//! Execution resources: functional-unit state, the per-cycle issue sink,
//! and the completion event queue.

use diq_core::{FuTopology, IssueSink, Side};
use diq_isa::{Cycle, InstId, OpClass, PhysReg};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::rename::RenameState;

/// Persistent functional-unit occupancy (unpipelined units block).
#[derive(Clone, Debug)]
pub(crate) struct FuState {
    busy_until: Vec<Cycle>,
}

impl FuState {
    pub(crate) fn new(topology: &FuTopology) -> Self {
        FuState {
            busy_until: vec![0; topology.units().len()],
        }
    }
}

/// One accepted issue.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Issued {
    pub id: InstId,
    pub op: OpClass,
}

/// The per-cycle [`IssueSink`]: enforces per-side issue width and
/// functional-unit availability under the scheme's topology, and records
/// what was accepted.
pub(crate) struct CycleSink<'a> {
    now: Cycle,
    rename: &'a RenameState,
    topology: &'a FuTopology,
    fu: &'a mut FuState,
    unit_used: Vec<bool>,
    width_left: [usize; 2],
    latency_of: &'a dyn Fn(OpClass) -> u64,
    pub accepted: Vec<Issued>,
}

impl<'a> CycleSink<'a> {
    pub(crate) fn new(
        now: Cycle,
        rename: &'a RenameState,
        topology: &'a FuTopology,
        fu: &'a mut FuState,
        width: (usize, usize),
        latency_of: &'a dyn Fn(OpClass) -> u64,
    ) -> Self {
        let units = fu.busy_until.len();
        CycleSink {
            now,
            rename,
            topology,
            fu,
            unit_used: vec![false; units],
            width_left: [width.0, width.1],
            latency_of,
            accepted: Vec::new(),
        }
    }
}

impl IssueSink for CycleSink<'_> {
    fn is_ready(&self, r: PhysReg) -> bool {
        self.rename.is_ready(r, self.now)
    }

    fn try_issue(&mut self, inst: InstId, op: OpClass, queue: Option<(Side, usize)>) -> bool {
        let side = Side::of(op);
        if self.width_left[side.index()] == 0 {
            return false;
        }
        let reachable = self.topology.reachable(op, queue);
        let Some(unit) = reachable
            .into_iter()
            .find(|u| !self.unit_used[u.0] && self.fu.busy_until[u.0] <= self.now)
        else {
            return false;
        };
        self.unit_used[unit.0] = true;
        if op.is_unpipelined() {
            self.fu.busy_until[unit.0] = self.now + (self.latency_of)(op);
        }
        self.width_left[side.index()] -= 1;
        self.accepted.push(Issued { id: inst, op });
        true
    }
}

/// Completion-event kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum EventKind {
    /// Result available / instruction complete.
    Complete,
    /// Branch outcome known (possible fetch redirect).
    BranchResolve,
    /// Load address generation finished: enter the memory phase.
    LoadAddrDone,
}

/// A time-ordered completion event queue.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Reverse<(Cycle, u64, EventKind)>>,
}

impl EventQueue {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn schedule(&mut self, at: Cycle, id: InstId, kind: EventKind) {
        self.heap.push(Reverse((at, id.0, kind)));
    }

    /// Pops every event due at or before `now`.
    pub(crate) fn due(&mut self, now: Cycle) -> Vec<(InstId, EventKind)> {
        let mut out = Vec::new();
        while let Some(&Reverse((at, id, kind))) = self.heap.peek() {
            if at > now {
                break;
            }
            self.heap.pop();
            out.push((InstId(id), kind));
        }
        out
    }

    /// Earliest pending event time (drain diagnostics).
    pub(crate) fn next_at(&self) -> Option<Cycle> {
        self.heap.peek().map(|Reverse((at, _, _))| *at)
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diq_isa::{FuPoolConfig, ProcessorConfig};

    #[test]
    fn event_queue_orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(5, InstId(1), EventKind::Complete);
        q.schedule(3, InstId(2), EventKind::Complete);
        assert!(q.due(2).is_empty());
        let due = q.due(5);
        assert_eq!(due.len(), 2);
        assert_eq!(due[0].0, InstId(2));
        assert!(q.is_empty());
    }

    #[test]
    fn sink_enforces_width_and_units() {
        let cfg = ProcessorConfig::hpca2004();
        let rename = RenameState::new(&cfg);
        let topo = FuTopology::Shared {
            pool: FuPoolConfig::default(),
        };
        let mut fu = FuState::new(&topo);
        let lat = |op: OpClass| cfg.lat.for_op(op);
        let mut sink = CycleSink::new(0, &rename, &topo, &mut fu, (2, 8), &lat);
        assert!(sink.try_issue(InstId(1), OpClass::IntAlu, None));
        assert!(sink.try_issue(InstId(2), OpClass::IntAlu, None));
        // Integer width (2) exhausted.
        assert!(!sink.try_issue(InstId(3), OpClass::IntAlu, None));
        // FP width independent.
        assert!(sink.try_issue(InstId(4), OpClass::FpAdd, None));
    }

    #[test]
    fn unpipelined_divide_blocks_its_unit() {
        let cfg = ProcessorConfig::hpca2004();
        let rename = RenameState::new(&cfg);
        let topo = FuTopology::Distributed {
            int_queues: 2,
            fp_queues: 2,
        };
        let mut fu = FuState::new(&topo);
        let lat = |op: OpClass| cfg.lat.for_op(op);
        {
            let mut sink = CycleSink::new(0, &rename, &topo, &mut fu, (8, 8), &lat);
            assert!(sink.try_issue(InstId(1), OpClass::IntDiv, Some((Side::Int, 0))));
        }
        {
            // Next cycle: queues 0 and 1 share the divider, still busy.
            let mut sink = CycleSink::new(1, &rename, &topo, &mut fu, (8, 8), &lat);
            assert!(!sink.try_issue(InstId(2), OpClass::IntDiv, Some((Side::Int, 1))));
            // But the ALU of queue 1 is free.
            assert!(sink.try_issue(InstId(3), OpClass::IntAlu, Some((Side::Int, 1))));
        }
        {
            // After the 20-cycle divide, the unit frees.
            let mut sink = CycleSink::new(20, &rename, &topo, &mut fu, (8, 8), &lat);
            assert!(sink.try_issue(InstId(4), OpClass::IntDiv, Some((Side::Int, 1))));
        }
    }

    #[test]
    fn pipelined_units_accept_one_per_cycle() {
        let cfg = ProcessorConfig::hpca2004();
        let rename = RenameState::new(&cfg);
        let topo = FuTopology::Distributed {
            int_queues: 2,
            fp_queues: 2,
        };
        let mut fu = FuState::new(&topo);
        let lat = |op: OpClass| cfg.lat.for_op(op);
        let mut sink = CycleSink::new(0, &rename, &topo, &mut fu, (8, 8), &lat);
        // FP queue pair (0,1) shares one adder: second add this cycle fails.
        assert!(sink.try_issue(InstId(1), OpClass::FpAdd, Some((Side::Fp, 0))));
        assert!(!sink.try_issue(InstId(2), OpClass::FpAdd, Some((Side::Fp, 1))));
        // The pair's multiplier is separate.
        assert!(sink.try_issue(InstId(3), OpClass::FpMul, Some((Side::Fp, 1))));
    }
}
