//! Execution resources: functional-unit state, the per-cycle issue sink,
//! and the completion event queue.

use diq_core::{FuTopology, IssueSink, Side};
use diq_isa::{Cycle, InstId, LatencyConfig, OpClass, PhysReg};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::rename::RenameState;

/// Persistent functional-unit occupancy (unpipelined units block), plus the
/// per-cycle "granted this cycle" scratch flags (reused, not reallocated).
#[derive(Clone, Debug)]
pub(crate) struct FuState {
    busy_until: Vec<Cycle>,
    unit_used: Vec<bool>,
}

impl FuState {
    pub(crate) fn new(topology: &FuTopology) -> Self {
        let units = topology.units().len();
        FuState {
            busy_until: vec![0; units],
            unit_used: vec![false; units],
        }
    }

    /// Resets the per-cycle grant flags.
    fn begin_cycle(&mut self) {
        self.unit_used.fill(false);
    }
}

/// One accepted issue.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Issued {
    pub id: InstId,
    pub op: OpClass,
}

/// The per-cycle [`IssueSink`]: enforces per-side issue width and
/// functional-unit availability under the scheme's topology, and records
/// what was accepted into a caller-owned scratch buffer (no per-cycle
/// allocation). Latencies come from the [`LatencyConfig`] held by value —
/// a direct table lookup, not a dynamic call, on the issue hot path.
pub(crate) struct CycleSink<'a> {
    now: Cycle,
    rename: &'a RenameState,
    topology: &'a FuTopology,
    fu: &'a mut FuState,
    width_left: [usize; 2],
    lat: LatencyConfig,
    pub accepted: &'a mut Vec<Issued>,
}

impl<'a> CycleSink<'a> {
    pub(crate) fn new(
        now: Cycle,
        rename: &'a RenameState,
        topology: &'a FuTopology,
        fu: &'a mut FuState,
        width: (usize, usize),
        lat: LatencyConfig,
        accepted: &'a mut Vec<Issued>,
    ) -> Self {
        fu.begin_cycle();
        accepted.clear();
        CycleSink {
            now,
            rename,
            topology,
            fu,
            width_left: [width.0, width.1],
            lat,
            accepted,
        }
    }
}

impl IssueSink for CycleSink<'_> {
    fn is_ready(&self, r: PhysReg) -> bool {
        self.rename.is_ready(r, self.now)
    }

    fn is_spec_ready(&self, r: PhysReg) -> bool {
        self.rename.is_spec(r)
    }

    fn try_issue(&mut self, inst: InstId, op: OpClass, queue: Option<(Side, usize)>) -> bool {
        let side = Side::of(op);
        if self.width_left[side.index()] == 0 {
            return false;
        }
        let reachable = self.topology.reachable_range(op, queue);
        let Some(unit) = reachable
            .into_iter()
            .find(|&u| !self.fu.unit_used[u] && self.fu.busy_until[u] <= self.now)
        else {
            return false;
        };
        self.fu.unit_used[unit] = true;
        if op.is_unpipelined() {
            self.fu.busy_until[unit] = self.now + self.lat.for_op(op);
        }
        self.width_left[side.index()] -= 1;
        self.accepted.push(Issued { id: inst, op });
        true
    }
}

/// Completion-event kinds.
///
/// The derived `Ord` (declaration order) is part of the same-cycle,
/// same-instruction drain order: `SpecMiss` must sort *before* `Complete`
/// so that when a miss is detected the same cycle the line fills (an
/// L2-hit with `l2.latency == 1`), the cancel runs before the true
/// broadcast. The relative order of the three pre-speculation kinds is
/// unchanged.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum EventKind {
    /// Load-hit speculation: the access turned out to miss — un-ready the
    /// speculatively woken register and replay its consumers.
    SpecMiss,
    /// Result available / instruction complete.
    Complete,
    /// Branch outcome known (possible fetch redirect).
    BranchResolve,
    /// Load address generation finished: enter the memory phase.
    LoadAddrDone,
    /// Load-hit speculation: broadcast the load's tag at the predicted
    /// L1-hit latency (the access's real outcome is not known yet).
    SpecWakeup,
}

/// Calendar slots: must exceed the longest completion latency the machine
/// schedules (worst main-memory access); rarer, farther events overflow
/// into a heap.
const WHEEL_SLOTS: usize = 1024;

/// A wheel-slot event node: the event payload plus the index of the next
/// node in the same slot's list (or [`NIL`]). Free nodes reuse `next` to
/// chain the free list.
#[derive(Clone, Copy, Debug)]
struct EventNode {
    id: u64,
    token: u64,
    kind: EventKind,
    next: u32,
}

/// Sentinel "no node" index for [`EventNode::next`] and the slot heads.
const NIL: u32 = u32::MAX;

/// A time-ordered completion event queue.
///
/// Implemented as a calendar wheel: events land in the slot of their due
/// cycle (O(1) schedule), and each simulated cycle drains exactly one slot
/// (O(events) — a per-slot sort restores the global `(cycle, id, kind)`
/// order a binary heap would produce). Events farther out than the wheel
/// go to a small overflow heap.
///
/// Slots are intrusive linked lists over one shared node arena rather than
/// 1024 separate `Vec`s: per-slot vectors each ratchet up to their own
/// all-time peak of "events due in a single cycle", so a long run keeps
/// reallocating as rare spikes set new per-slot records. The arena only
/// grows to the peak number of *live* events — bounded by the in-flight
/// window — after which scheduling allocates nothing (asserted by
/// `tests/alloc_steady_state.rs`). Drain order of a list is
/// insertion-reversed, which is fine: every drained cycle is sorted into
/// `(id, kind, token)` order below.
///
/// Each event carries the dispatch `token` of the instruction it belongs
/// to. A wrong-path squash cannot reach into the wheel to cancel events; it
/// instead truncates the in-flight table, and the drain consumer compares
/// the token against the table — a mismatch means the event's instruction
/// was squashed (and its id possibly reissued to a correct-path successor),
/// so the event is dead. Without speculation every token matches and the
/// behaviour is exactly the pre-token queue's.
#[derive(Debug)]
pub(crate) struct EventQueue {
    /// Head node index per wheel slot ([`NIL`] when the slot is empty).
    heads: Box<[u32; WHEEL_SLOTS]>,
    /// Shared node arena; grows to the peak live-event count, then stops.
    nodes: Vec<EventNode>,
    /// Head of the intrusive free list threaded through `nodes[..].next`.
    free: u32,
    /// Every event before this cycle has been drained.
    floor: Cycle,
    len: usize,
    overflow: BinaryHeap<Reverse<(Cycle, u64, EventKind, u64)>>,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue {
            heads: Box::new([NIL; WHEEL_SLOTS]),
            nodes: Vec::new(),
            free: NIL,
            floor: 0,
            len: 0,
            overflow: BinaryHeap::new(),
        }
    }
}

impl EventQueue {
    /// A queue whose node arena is pre-sized for `live_events` concurrent
    /// events, so reaching that high-water mark never allocates mid-run.
    /// An issued instruction holds at most two pending events (a speculated
    /// load's wakeup + miss check), so `2 * rob_entries` covers any
    /// schedule — including ones whose issue dynamics keep shifting deep
    /// into a run (adaptive geometry), where the arena would otherwise
    /// ratchet up long after warm-up.
    pub(crate) fn with_capacity(live_events: usize) -> Self {
        EventQueue {
            nodes: Vec::with_capacity(live_events),
            ..Self::default()
        }
    }

    pub(crate) fn schedule(&mut self, at: Cycle, id: InstId, token: u64, kind: EventKind) {
        debug_assert!(at >= self.floor, "event scheduled in the past");
        self.len += 1;
        if (at - self.floor) < WHEEL_SLOTS as u64 {
            let slot = (at as usize) % WHEEL_SLOTS;
            let node = EventNode {
                id: id.0,
                token,
                kind,
                next: self.heads[slot],
            };
            let idx = if self.free == NIL {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            } else {
                let idx = self.free;
                self.free = self.nodes[idx as usize].next;
                self.nodes[idx as usize] = node;
                idx
            };
            self.heads[slot] = idx;
        } else {
            self.overflow.push(Reverse((at, id.0, kind, token)));
        }
    }

    /// Pops every event due at or before `now` into `out` (cleared first),
    /// in `(cycle, id, kind)` order — callers hand back the same scratch
    /// buffer every cycle.
    pub(crate) fn drain_due(&mut self, now: Cycle, out: &mut Vec<(InstId, u64, EventKind)>) {
        out.clear();
        while self.floor <= now {
            let t = self.floor;
            let start = out.len();
            let slot = (t as usize) % WHEEL_SLOTS;
            let mut idx = self.heads[slot];
            self.heads[slot] = NIL;
            while idx != NIL {
                let node = self.nodes[idx as usize];
                out.push((InstId(node.id), node.token, node.kind));
                self.nodes[idx as usize].next = self.free;
                self.free = idx;
                idx = node.next;
            }
            while let Some(&Reverse((at, id, kind, token))) = self.overflow.peek() {
                if at > t {
                    break;
                }
                self.overflow.pop();
                out.push((InstId(id), token, kind));
            }
            out[start..].sort_unstable_by_key(|&(id, token, kind)| (id.0, kind, token));
            self.floor += 1;
        }
        self.len -= out.len();
    }

    /// Earliest pending event time (drain diagnostics; O(wheel)).
    pub(crate) fn next_at(&self) -> Option<Cycle> {
        let mut earliest = self.overflow.peek().map(|Reverse((at, _, _, _))| *at);
        for dt in 0..WHEEL_SLOTS as u64 {
            let t = self.floor + dt;
            if self.heads[(t as usize) % WHEEL_SLOTS] != NIL {
                earliest = Some(earliest.map_or(t, |e| e.min(t)));
                break;
            }
        }
        earliest
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diq_isa::{FuPoolConfig, ProcessorConfig};

    #[test]
    fn event_queue_orders_by_time() {
        let mut q = EventQueue::default();
        let mut due = Vec::new();
        q.schedule(5, InstId(1), 0, EventKind::Complete);
        q.schedule(3, InstId(2), 0, EventKind::Complete);
        q.drain_due(2, &mut due);
        assert!(due.is_empty());
        q.drain_due(5, &mut due);
        assert_eq!(due.len(), 2);
        assert_eq!(due[0].0, InstId(2));
        assert!(q.is_empty());
    }

    #[test]
    fn sink_enforces_width_and_units() {
        let cfg = ProcessorConfig::hpca2004();
        let rename = RenameState::new(&cfg);
        let topo = FuTopology::Shared {
            pool: FuPoolConfig::default(),
        };
        let mut fu = FuState::new(&topo);
        let mut accepted = Vec::new();
        let mut sink = CycleSink::new(0, &rename, &topo, &mut fu, (2, 8), cfg.lat, &mut accepted);
        assert!(sink.try_issue(InstId(1), OpClass::IntAlu, None));
        assert!(sink.try_issue(InstId(2), OpClass::IntAlu, None));
        // Integer width (2) exhausted.
        assert!(!sink.try_issue(InstId(3), OpClass::IntAlu, None));
        // FP width independent.
        assert!(sink.try_issue(InstId(4), OpClass::FpAdd, None));
    }

    #[test]
    fn unpipelined_divide_blocks_its_unit() {
        let cfg = ProcessorConfig::hpca2004();
        let rename = RenameState::new(&cfg);
        let topo = FuTopology::Distributed {
            int_queues: 2,
            fp_queues: 2,
        };
        let mut fu = FuState::new(&topo);
        let mut accepted = Vec::new();
        {
            let mut sink =
                CycleSink::new(0, &rename, &topo, &mut fu, (8, 8), cfg.lat, &mut accepted);
            assert!(sink.try_issue(InstId(1), OpClass::IntDiv, Some((Side::Int, 0))));
        }
        {
            // Next cycle: queues 0 and 1 share the divider, still busy.
            let mut sink =
                CycleSink::new(1, &rename, &topo, &mut fu, (8, 8), cfg.lat, &mut accepted);
            assert!(!sink.try_issue(InstId(2), OpClass::IntDiv, Some((Side::Int, 1))));
            // But the ALU of queue 1 is free.
            assert!(sink.try_issue(InstId(3), OpClass::IntAlu, Some((Side::Int, 1))));
        }
        {
            // After the 20-cycle divide, the unit frees.
            let mut sink =
                CycleSink::new(20, &rename, &topo, &mut fu, (8, 8), cfg.lat, &mut accepted);
            assert!(sink.try_issue(InstId(4), OpClass::IntDiv, Some((Side::Int, 1))));
        }
    }

    #[test]
    fn pipelined_units_accept_one_per_cycle() {
        let cfg = ProcessorConfig::hpca2004();
        let rename = RenameState::new(&cfg);
        let topo = FuTopology::Distributed {
            int_queues: 2,
            fp_queues: 2,
        };
        let mut fu = FuState::new(&topo);
        let mut accepted = Vec::new();
        let mut sink = CycleSink::new(0, &rename, &topo, &mut fu, (8, 8), cfg.lat, &mut accepted);
        // FP queue pair (0,1) shares one adder: second add this cycle fails.
        assert!(sink.try_issue(InstId(1), OpClass::FpAdd, Some((Side::Fp, 0))));
        assert!(!sink.try_issue(InstId(2), OpClass::FpAdd, Some((Side::Fp, 1))));
        // The pair's multiplier is separate.
        assert!(sink.try_issue(InstId(3), OpClass::FpMul, Some((Side::Fp, 1))));
    }
}
