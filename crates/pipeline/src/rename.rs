//! Register renaming: per-class map tables, free lists, and the physical
//! register scoreboard.

use diq_isa::{ArchReg, Cycle, PhysReg, ProcessorConfig, RegClass, ARCH_REGS_PER_CLASS};
use std::collections::VecDeque;

/// Sentinel for "value still being produced".
const PENDING: Cycle = Cycle::MAX;

/// Rename state for both register classes.
///
/// At reset, architectural register *i* maps to physical register *i* and
/// all mapped registers hold ready values; the remaining physical registers
/// populate the free lists.
#[derive(Clone, Debug)]
pub struct RenameState {
    map: [Vec<u16>; 2],
    free: [VecDeque<u16>; 2],
    /// Cycle at which each physical register's value is (or becomes)
    /// available; `Cycle::MAX` while in flight.
    ready: [Vec<Cycle>; 2],
    /// Whether the register's readiness is *speculative* — a missing load's
    /// tag broadcast at the predicted hit latency. Spec-ready registers
    /// look ready to wakeup/selection ([`is_ready`](Self::is_ready)) but
    /// hold no real value ([`is_ready_real`](Self::is_ready_real)); the
    /// flag clears on the cancel, the true fill, or re-allocation.
    spec: [Vec<bool>; 2],
}

impl RenameState {
    /// Builds the rename state for the configured physical register files.
    ///
    /// # Panics
    ///
    /// Panics if a physical file is not larger than the architectural one.
    #[must_use]
    pub fn new(cfg: &ProcessorConfig) -> Self {
        let build = |n: usize| {
            assert!(
                n > ARCH_REGS_PER_CLASS,
                "need more physical than architectural registers"
            );
            let map: Vec<u16> = (0..ARCH_REGS_PER_CLASS as u16).collect();
            let free: VecDeque<u16> = (ARCH_REGS_PER_CLASS as u16..n as u16).collect();
            let ready = vec![0; n];
            (map, free, ready)
        };
        let (mi, fi, ri) = build(cfg.phys_int_regs);
        let (mf, ff, rf) = build(cfg.phys_fp_regs);
        let spec = [
            vec![false; cfg.phys_int_regs],
            vec![false; cfg.phys_fp_regs],
        ];
        RenameState {
            map: [mi, mf],
            free: [fi, ff],
            ready: [ri, rf],
            spec,
        }
    }

    /// Current mapping of an architectural register.
    #[must_use]
    pub fn lookup(&self, r: ArchReg) -> PhysReg {
        PhysReg::new(r.class(), self.map[r.class().index()][r.index()])
    }

    /// Whether a free physical register exists for `class`.
    #[must_use]
    pub fn can_allocate(&self, class: RegClass) -> bool {
        !self.free[class.index()].is_empty()
    }

    /// The register the next allocation for `class` would return, without
    /// allocating (dispatch peeks before the scheduler accepts).
    #[must_use]
    pub fn peek_allocate(&self, class: RegClass) -> Option<PhysReg> {
        self.free[class.index()]
            .front()
            .map(|&i| PhysReg::new(class, i))
    }

    /// Commits an allocation: remaps `dst` to a fresh physical register and
    /// returns `(new, previous)`. The previous mapping is freed when the
    /// instruction commits.
    ///
    /// # Panics
    ///
    /// Panics if the free list is empty (callers check
    /// [`can_allocate`](Self::can_allocate) first).
    pub fn allocate(&mut self, dst: ArchReg) -> (PhysReg, PhysReg) {
        let ci = dst.class().index();
        let new = self.free[ci].pop_front().expect("free list empty");
        let old = self.map[ci][dst.index()];
        self.map[ci][dst.index()] = new;
        self.ready[ci][new as usize] = PENDING;
        self.spec[ci][new as usize] = false;
        (
            PhysReg::new(dst.class(), new),
            PhysReg::new(dst.class(), old),
        )
    }

    /// Returns a committed instruction's previous mapping to the free list.
    pub fn release(&mut self, prev: PhysReg) {
        self.free[prev.class().index()].push_back(prev.index() as u16);
    }

    /// Undoes one [`allocate`](Self::allocate) during wrong-path recovery:
    /// remaps `dst` back to `prev` and returns `new` to the *front* of the
    /// free list.
    ///
    /// Recovery walks the squashed ROB suffix youngest-first, so after the
    /// walk the map and the free list are bit-identical to a checkpoint
    /// taken at the mispredicted branch — pushing to the front restores the
    /// exact allocation order (correct-path commits may have appended
    /// releases to the back in the meantime; those legitimately stay).
    ///
    /// # Panics
    ///
    /// Panics (debug) if `dst` is not currently mapped to `new` — the
    /// youngest-first walk guarantees it is.
    pub fn unallocate(&mut self, dst: ArchReg, new: PhysReg, prev: PhysReg) {
        let ci = dst.class().index();
        debug_assert_eq!(
            self.map[ci][dst.index()],
            new.index() as u16,
            "unallocate out of order"
        );
        self.map[ci][dst.index()] = prev.index() as u16;
        self.free[ci].push_front(new.index() as u16);
    }

    /// Marks a physical register's value available from `cycle` on (and
    /// *real*: a true fill clears any speculative flag).
    pub fn set_ready(&mut self, r: PhysReg, cycle: Cycle) {
        self.ready[r.class().index()][r.index()] = cycle;
        self.spec[r.class().index()][r.index()] = false;
    }

    /// Marks `r` *speculatively* ready from `cycle` on: a missing load's
    /// tag broadcast at the predicted hit latency. Wakeup and selection
    /// treat it as ready; the value does not exist until the true fill.
    pub fn set_ready_spec(&mut self, r: PhysReg, cycle: Cycle) {
        self.ready[r.class().index()][r.index()] = cycle;
        self.spec[r.class().index()][r.index()] = true;
    }

    /// Undoes a speculative wakeup at miss detection: `r` goes back to
    /// in-flight until the true fill calls [`set_ready`](Self::set_ready).
    pub fn cancel_spec(&mut self, r: PhysReg) {
        self.ready[r.class().index()][r.index()] = PENDING;
        self.spec[r.class().index()][r.index()] = false;
    }

    /// Whether `r`'s value is available at `now` — speculatively or for
    /// real. This is the scoreboard wakeup/selection reads.
    #[must_use]
    pub fn is_ready(&self, r: PhysReg, now: Cycle) -> bool {
        self.ready[r.class().index()][r.index()] <= now
    }

    /// Whether `r` holds a *real* value at `now` (speculative readiness
    /// excluded) — what store-data completion and the dataflow checker use.
    #[must_use]
    pub fn is_ready_real(&self, r: PhysReg, now: Cycle) -> bool {
        self.ready[r.class().index()][r.index()] <= now && !self.spec[r.class().index()][r.index()]
    }

    /// Whether `r` is currently in a speculative-wakeup window.
    #[must_use]
    pub fn is_spec(&self, r: PhysReg) -> bool {
        self.spec[r.class().index()][r.index()]
    }

    /// Number of free registers (diagnostics).
    #[must_use]
    pub fn free_count(&self, class: RegClass) -> usize {
        self.free[class.index()].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> RenameState {
        RenameState::new(&ProcessorConfig::hpca2004())
    }

    #[test]
    fn initial_mappings_are_identity_and_ready() {
        let s = state();
        let r5 = ArchReg::int(5);
        assert_eq!(s.lookup(r5).index(), 5);
        assert!(s.is_ready(s.lookup(r5), 0));
        let cfg = ProcessorConfig::hpca2004();
        assert_eq!(s.free_count(RegClass::Int), cfg.phys_int_regs - 32);
    }

    #[test]
    fn allocate_remaps_and_marks_pending() {
        let mut s = state();
        let r5 = ArchReg::int(5);
        let (new, old) = s.allocate(r5);
        assert_eq!(old.index(), 5);
        assert_eq!(s.lookup(r5), new);
        assert!(!s.is_ready(new, 1_000_000));
        s.set_ready(new, 7);
        assert!(!s.is_ready(new, 6));
        assert!(s.is_ready(new, 7));
    }

    #[test]
    fn release_recycles_registers() {
        let mut s = state();
        let before = s.free_count(RegClass::Fp);
        let (_, old) = s.allocate(ArchReg::fp(3));
        assert_eq!(s.free_count(RegClass::Fp), before - 1);
        s.release(old);
        assert_eq!(s.free_count(RegClass::Fp), before);
    }

    #[test]
    fn peek_matches_allocate() {
        let mut s = state();
        let peeked = s.peek_allocate(RegClass::Int).unwrap();
        let (alloc, _) = s.allocate(ArchReg::int(9));
        assert_eq!(peeked, alloc);
    }

    #[test]
    fn unallocate_restores_map_and_free_order() {
        let mut s = state();
        let r5 = ArchReg::int(5);
        let r6 = ArchReg::int(6);
        let (n5, p5) = s.allocate(r5);
        let (n6, p6) = s.allocate(r6);
        // Youngest first, as recovery walks the ROB suffix.
        s.unallocate(r6, n6, p6);
        s.unallocate(r5, n5, p5);
        assert_eq!(s.lookup(r5).index(), 5);
        assert_eq!(s.lookup(r6).index(), 6);
        // The free list hands out the same registers in the same order as
        // if the allocations never happened.
        assert_eq!(s.peek_allocate(RegClass::Int).unwrap(), n5);
        let _ = s.allocate(r5);
        assert_eq!(s.peek_allocate(RegClass::Int).unwrap(), n6);
    }

    #[test]
    fn speculative_readiness_is_visible_but_not_real() {
        let mut s = state();
        let (p, _) = s.allocate(ArchReg::int(4));
        s.set_ready_spec(p, 5);
        assert!(s.is_ready(p, 5), "wakeup sees the speculative value");
        assert!(!s.is_ready_real(p, 5), "the real value does not exist");
        assert!(s.is_spec(p));
        // Miss detected: back to in-flight.
        s.cancel_spec(p);
        assert!(!s.is_ready(p, 1_000_000));
        assert!(!s.is_spec(p));
        // True fill: real from here on.
        s.set_ready(p, 40);
        assert!(s.is_ready_real(p, 40));
        assert!(!s.is_spec(p));
    }

    #[test]
    fn reallocation_clears_a_stale_spec_flag() {
        // A squashed load can leave its destination spec-ready on the free
        // list (its cancel event died with it); the next allocation of that
        // register must start clean.
        let mut s = state();
        let (p, prev) = s.allocate(ArchReg::int(4));
        s.set_ready_spec(p, 5);
        s.unallocate(ArchReg::int(4), p, prev);
        let (p2, _) = s.allocate(ArchReg::int(9));
        assert_eq!(p2, p, "free-list front reuses the squashed register");
        assert!(!s.is_spec(p2));
        assert!(!s.is_ready(p2, 1_000_000));
    }

    #[test]
    fn exhaustion_reports_no_allocation() {
        let mut s = state();
        while s.can_allocate(RegClass::Int) {
            let _ = s.allocate(ArchReg::int(0));
        }
        assert_eq!(s.peek_allocate(RegClass::Int), None);
        assert_eq!(s.free_count(RegClass::Int), 0);
    }
}
