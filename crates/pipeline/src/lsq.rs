//! Load/store queue: program-order memory disambiguation with
//! store-to-load forwarding.
//!
//! Loads are split into address generation (issued by the scheduler onto an
//! integer ALU) and the memory access, which may start only once every
//! older store's address is known — the conservative policy the paper's
//! `AllStoreAddr` estimation mirrors. A load whose address matches an older
//! store forwards the store's data instead of accessing the cache.

use diq_isa::InstId;
use std::collections::VecDeque;

/// Word granularity used for matching (8-byte aligned, as the synthetic
/// traces issue 8-byte accesses).
fn dword(addr: u64) -> u64 {
    addr >> 3
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MemState {
    /// Waiting for issue / address generation.
    WaitAddr,
    /// (Loads) address known; waiting for disambiguation, a port, or data.
    WaitMem,
    /// Access in flight or complete.
    Done,
}

#[derive(Clone, Copy, Debug)]
struct LsqEntry {
    id: InstId,
    is_store: bool,
    addr: u64,
    state: MemState,
    /// Store address generation finished (younger loads may disambiguate).
    addr_known: bool,
    /// Store data value available (younger loads may forward).
    data_ready: bool,
}

/// A store's disambiguation-relevant state, mirrored from its entry so the
/// per-cycle load scan touches stores only (not every queue entry).
#[derive(Clone, Copy, Debug)]
struct StoreInfo {
    id: InstId,
    dw: u64,
    addr_known: bool,
    data_ready: bool,
}

/// The load/store queue.
#[derive(Clone, Debug, Default)]
pub struct Lsq {
    entries: VecDeque<LsqEntry>,
    /// Stores still in the queue, program order (mirror of `entries`).
    stores: VecDeque<StoreInfo>,
    /// Loads in the memory phase `(id, dword)`, program order.
    pending: Vec<(InstId, u64)>,
    /// Per-cycle scratch: `dword -> all matching older stores data-ready`.
    match_scratch: Vec<(u64, bool)>,
    /// Cached non-`Wait` actions for the current queue state; valid while
    /// `actions_dirty` is false. Disambiguation outcomes only change when
    /// an entry changes state, which is a per-instruction event — stalled
    /// cycles reuse the cache instead of re-walking the queue.
    cached_actions: Vec<(InstId, LoadAction)>,
    actions_dirty: bool,
    /// Forwarding statistics.
    pub forwards: u64,
}

/// What a load in the memory phase should do this cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadAction {
    /// Blocked: an older store's address is unknown, or a matching older
    /// store's data is not complete yet.
    Wait,
    /// Forward from a completed matching store: result next cycle, no cache
    /// access.
    Forward,
    /// Access the data cache.
    Access,
}

impl Lsq {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty queue with room for `capacity` in-flight memory
    /// operations reserved up front, so queue growth and the per-cycle
    /// scratch never allocate mid-run (the in-flight window bounds all of
    /// them).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Lsq {
            entries: VecDeque::with_capacity(capacity),
            stores: VecDeque::with_capacity(capacity),
            pending: Vec::with_capacity(capacity),
            match_scratch: Vec::with_capacity(capacity),
            cached_actions: Vec::with_capacity(capacity),
            ..Self::default()
        }
    }

    /// Allocates an entry at dispatch (program order).
    pub fn push(&mut self, id: InstId, is_store: bool, addr: u64) {
        self.entries.push_back(LsqEntry {
            id,
            is_store,
            addr,
            state: MemState::WaitAddr,
            addr_known: false,
            data_ready: false,
        });
        self.actions_dirty = true;
        if is_store {
            self.stores.push_back(StoreInfo {
                id,
                dw: dword(addr),
                addr_known: false,
                data_ready: false,
            });
        }
    }

    /// Entries are in program order, so ids are sorted: binary search.
    fn entry_mut(&mut self, id: InstId) -> &mut LsqEntry {
        let i = self.entries.partition_point(|e| e.id < id);
        let e = &mut self.entries[i];
        assert_eq!(e.id, id, "LSQ entry exists");
        e
    }

    fn store_mut(&mut self, id: InstId) -> &mut StoreInfo {
        let i = self.stores.partition_point(|s| s.id < id);
        let s = &mut self.stores[i];
        debug_assert_eq!(s.id, id);
        s
    }

    /// A store finished address generation: younger loads can disambiguate
    /// against it.
    pub fn store_addr_done(&mut self, id: InstId) {
        let e = self.entry_mut(id);
        debug_assert!(e.is_store);
        e.addr_known = true;
        if e.data_ready {
            e.state = MemState::Done;
        }
        self.store_mut(id).addr_known = true;
        self.actions_dirty = true;
    }

    /// A store's data value became available: younger matching loads can
    /// forward from it.
    pub fn store_data_ready(&mut self, id: InstId) {
        let e = self.entry_mut(id);
        debug_assert!(e.is_store);
        e.data_ready = true;
        if e.addr_known {
            e.state = MemState::Done;
        }
        self.store_mut(id).data_ready = true;
        self.actions_dirty = true;
    }

    /// A load finished address generation: it enters the memory phase.
    pub fn load_addr_done(&mut self, id: InstId) {
        let e = self.entry_mut(id);
        debug_assert!(!e.is_store);
        e.state = MemState::WaitMem;
        let dw = dword(e.addr);
        let pos = self.pending.partition_point(|&(pid, _)| pid < id);
        self.pending.insert(pos, (id, dw));
        self.actions_dirty = true;
    }

    /// Loads currently in the memory phase, oldest first.
    #[must_use]
    pub fn pending_loads(&self) -> Vec<InstId> {
        let mut out = Vec::new();
        self.pending_loads_into(&mut out);
        out
    }

    /// [`pending_loads`](Self::pending_loads) into a reused buffer
    /// (cleared first). Diagnostic/test view — the simulator's per-cycle
    /// path is [`pending_load_actions_into`](Self::pending_load_actions_into).
    pub fn pending_loads_into(&self, out: &mut Vec<InstId>) {
        out.clear();
        out.extend(
            self.entries
                .iter()
                .filter(|e| !e.is_store && e.state == MemState::WaitMem)
                .map(|e| e.id),
        );
    }

    /// Decides what load `id` may do this cycle, by scanning every older
    /// queue entry — the straightforward reference form of the
    /// disambiguation rules. The simulator uses the equivalent (and much
    /// cheaper) [`pending_load_actions_into`](Self::pending_load_actions_into);
    /// a unit test asserts the two agree, so keep them in lockstep.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a load in the memory phase.
    #[must_use]
    pub fn load_action(&self, id: InstId) -> LoadAction {
        let pos = self
            .entries
            .iter()
            .position(|e| e.id == id)
            .expect("load in LSQ");
        let load = &self.entries[pos];
        assert!(!load.is_store && load.state == MemState::WaitMem);
        let mut forward = false;
        for e in self.entries.iter().take(pos) {
            if !e.is_store {
                continue;
            }
            if !e.addr_known {
                // Unknown older store address: conservative wait.
                return LoadAction::Wait;
            }
            if dword(e.addr) == dword(load.addr) {
                if !e.data_ready {
                    // The matching store's value does not exist yet.
                    return LoadAction::Wait;
                }
                forward = true; // youngest older match wins; keep scanning
            }
        }
        if forward {
            LoadAction::Forward
        } else {
            LoadAction::Access
        }
    }

    /// Marks a load's access as started (it will complete via the event
    /// queue) and counts forwarding.
    pub fn load_started(&mut self, id: InstId, forwarded: bool) {
        if forwarded {
            self.forwards += 1;
        }
        self.entry_mut(id).state = MemState::Done;
        let pos = self.pending.partition_point(|&(pid, _)| pid < id);
        debug_assert_eq!(self.pending.get(pos).map(|&(pid, _)| pid), Some(id));
        self.pending.remove(pos);
        self.actions_dirty = true;
    }

    /// Wrong-path squash: removes every entry with `id >= from` (a suffix —
    /// entries are pushed in program order) from the queue, the store
    /// mirror, and the pending-load set. Forwarding that already happened
    /// to/from wrong-path entries stays counted: the speculative work was
    /// really performed.
    pub fn squash(&mut self, from: InstId) {
        while self.entries.back().is_some_and(|e| e.id >= from) {
            self.entries.pop_back();
        }
        while self.stores.back().is_some_and(|s| s.id >= from) {
            self.stores.pop_back();
        }
        self.pending.retain(|&(id, _)| id < from);
        self.actions_dirty = true;
    }

    /// Removes the (oldest) entry at commit.
    pub fn pop(&mut self, id: InstId) {
        debug_assert_eq!(self.entries.front().map(|e| e.id), Some(id));
        let e = self.entries.pop_front().expect("LSQ entry at commit");
        if e.is_store {
            debug_assert_eq!(self.stores.front().map(|s| s.id), Some(id));
            self.stores.pop_front();
            self.actions_dirty = true;
        }
    }

    /// This cycle's `Forward`/`Access` actions (loads that can do work —
    /// `Wait`s are omitted), oldest first, into a reused buffer (cleared
    /// first).
    ///
    /// Equivalent to calling [`load_action`](Self::load_action) per pending
    /// load, but computed in one merge walk over the pending loads and the
    /// store mirror — O(loads + stores) instead of O(loads x queue length)
    /// — and cached across cycles: outcomes only change when an entry
    /// changes state, so stalled cycles cost O(actionable loads).
    pub fn pending_load_actions_into(&mut self, out: &mut Vec<(InstId, LoadAction)>) {
        out.clear();
        if self.actions_dirty {
            self.recompute_actions();
            self.actions_dirty = false;
        }
        out.extend_from_slice(&self.cached_actions);
    }

    fn recompute_actions(&mut self) {
        self.cached_actions.clear();
        if self.pending.is_empty() {
            return;
        }
        self.match_scratch.clear();
        let mut unknown = false;
        let mut si = 0;
        for &(lid, ldw) in &self.pending {
            // Fold in stores older than this load: one pass total, since
            // both lists are in program order. Once an unknown store
            // address is crossed, every younger load waits — stop early.
            while si < self.stores.len() && self.stores[si].id < lid {
                let st = self.stores[si];
                if !st.addr_known {
                    unknown = true;
                    break;
                }
                match self.match_scratch.iter_mut().find(|(dw, _)| *dw == st.dw) {
                    Some((_, all_ready)) => *all_ready &= st.data_ready,
                    None => self.match_scratch.push((st.dw, st.data_ready)),
                }
                si += 1;
            }
            if unknown {
                // An older store's address is unknown: conservative wait
                // for this and every younger load.
                break;
            }
            match self
                .match_scratch
                .iter()
                .find(|&&(dw, _)| dw == ldw)
                .map(|&(_, all_ready)| all_ready)
            {
                // A matching older store with its value: forward. Any
                // matching older store still missing its value: wait.
                Some(true) => self.cached_actions.push((lid, LoadAction::Forward)),
                Some(false) => {}
                None => self.cached_actions.push((lid, LoadAction::Access)),
            }
        }
    }

    /// Live entries (diagnostics).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_waits_for_older_store_address() {
        let mut lsq = Lsq::new();
        lsq.push(InstId(1), true, 0x100);
        lsq.push(InstId(2), false, 0x200);
        lsq.load_addr_done(InstId(2));
        assert_eq!(lsq.load_action(InstId(2)), LoadAction::Wait);
        lsq.store_addr_done(InstId(1));
        assert_eq!(lsq.load_action(InstId(2)), LoadAction::Access);
    }

    #[test]
    fn matching_store_forwards() {
        let mut lsq = Lsq::new();
        lsq.push(InstId(1), true, 0x100);
        lsq.push(InstId(2), false, 0x100);
        lsq.store_addr_done(InstId(1));
        lsq.load_addr_done(InstId(2));
        // Address known but data still pending: the load must wait…
        assert_eq!(lsq.load_action(InstId(2)), LoadAction::Wait);
        lsq.store_data_ready(InstId(1));
        // …then forward once the value exists.
        assert_eq!(lsq.load_action(InstId(2)), LoadAction::Forward);
        lsq.load_started(InstId(2), true);
        assert_eq!(lsq.forwards, 1);
    }

    #[test]
    fn younger_stores_do_not_affect_loads() {
        let mut lsq = Lsq::new();
        lsq.push(InstId(1), false, 0x100);
        lsq.push(InstId(2), true, 0x100); // younger store
        lsq.load_addr_done(InstId(1));
        assert_eq!(lsq.load_action(InstId(1)), LoadAction::Access);
    }

    #[test]
    fn word_granularity_matching() {
        let mut lsq = Lsq::new();
        lsq.push(InstId(1), true, 0x100);
        lsq.push(InstId(2), false, 0x104); // same 8-byte word
        lsq.push(InstId(3), false, 0x108); // next word
        lsq.store_addr_done(InstId(1));
        lsq.store_data_ready(InstId(1));
        lsq.load_addr_done(InstId(2));
        lsq.load_addr_done(InstId(3));
        assert_eq!(lsq.load_action(InstId(2)), LoadAction::Forward);
        assert_eq!(lsq.load_action(InstId(3)), LoadAction::Access);
    }

    #[test]
    fn commit_pops_in_order() {
        let mut lsq = Lsq::new();
        lsq.push(InstId(1), true, 0x100);
        lsq.push(InstId(2), false, 0x200);
        lsq.store_addr_done(InstId(1));
        lsq.store_data_ready(InstId(1));
        lsq.pop(InstId(1));
        assert_eq!(lsq.len(), 1);
    }

    #[test]
    fn pending_loads_in_program_order() {
        let mut lsq = Lsq::new();
        lsq.push(InstId(3), false, 0x1);
        lsq.push(InstId(5), false, 0x2);
        lsq.load_addr_done(InstId(5));
        lsq.load_addr_done(InstId(3));
        assert_eq!(lsq.pending_loads(), vec![InstId(3), InstId(5)]);
    }

    /// The per-cycle merge walk must agree with the reference
    /// `load_action` scan: same actions, `Wait`s omitted, program order.
    fn assert_actions_match_reference(lsq: &mut Lsq) {
        let expected: Vec<(InstId, LoadAction)> = lsq
            .pending_loads()
            .into_iter()
            .map(|id| (id, lsq.load_action(id)))
            .filter(|&(_, a)| a != LoadAction::Wait)
            .collect();
        let mut actual = Vec::new();
        lsq.pending_load_actions_into(&mut actual);
        assert_eq!(actual, expected);
    }

    #[test]
    fn merge_walk_matches_reference_scan_through_a_store_lifecycle() {
        let mut lsq = Lsq::new();
        // Stores at two dwords bracketing three loads, plus an aliasing
        // younger store that must not matter.
        lsq.push(InstId(1), true, 0x100); // matches load 3
        lsq.push(InstId(2), true, 0x200); // unknown addr blocks loads 4, 6
        lsq.push(InstId(3), false, 0x104); // same dword as store 1
        lsq.push(InstId(4), false, 0x300); // independent
        lsq.push(InstId(6), false, 0x200); // matches store 2
        lsq.push(InstId(7), true, 0x300); // younger than every load
        for id in [3, 4, 6] {
            lsq.load_addr_done(InstId(id));
        }
        // Store 1 known but unready; store 2 fully unknown: everything
        // after store 1's match check still waits on store 2's address.
        lsq.store_addr_done(InstId(1));
        assert_actions_match_reference(&mut lsq);
        // Store 2's address arrives: load 4 can access, load 6 still waits
        // for store 2's data, load 3 for store 1's.
        lsq.store_addr_done(InstId(2));
        assert_actions_match_reference(&mut lsq);
        let mut actions = Vec::new();
        lsq.pending_load_actions_into(&mut actions);
        assert_eq!(actions, vec![(InstId(4), LoadAction::Access)]);
        // Data arrives: both matched loads forward.
        lsq.store_data_ready(InstId(1));
        lsq.store_data_ready(InstId(2));
        assert_actions_match_reference(&mut lsq);
        let mut actions = Vec::new();
        lsq.pending_load_actions_into(&mut actions);
        assert_eq!(
            actions,
            vec![
                (InstId(3), LoadAction::Forward),
                (InstId(4), LoadAction::Access),
                (InstId(6), LoadAction::Forward),
            ]
        );
    }

    #[test]
    fn any_unready_matching_store_blocks_even_with_a_ready_younger_match() {
        // Two stores to the same dword: the older one has no data yet. The
        // reference scan aborts at the first unready match; the merge
        // walk's all-matches-ready AND must agree (Wait, not Forward).
        let mut lsq = Lsq::new();
        lsq.push(InstId(1), true, 0x100);
        lsq.push(InstId(2), true, 0x100);
        lsq.push(InstId(3), false, 0x100);
        lsq.store_addr_done(InstId(1));
        lsq.store_addr_done(InstId(2));
        lsq.store_data_ready(InstId(2));
        lsq.load_addr_done(InstId(3));
        assert_eq!(lsq.load_action(InstId(3)), LoadAction::Wait);
        assert_actions_match_reference(&mut lsq);
        let mut actions = Vec::new();
        lsq.pending_load_actions_into(&mut actions);
        assert!(actions.is_empty(), "blocked load must not surface");
    }

    #[test]
    fn action_cache_invalidates_on_every_state_change() {
        let mut lsq = Lsq::new();
        lsq.push(InstId(1), true, 0x100);
        lsq.push(InstId(2), false, 0x100);
        lsq.load_addr_done(InstId(2));
        let mut actions = Vec::new();
        // Unknown store address: nothing actionable (and now cached).
        lsq.pending_load_actions_into(&mut actions);
        assert!(actions.is_empty());
        lsq.pending_load_actions_into(&mut actions);
        assert!(actions.is_empty(), "cached answer is stable");
        // Each mutation must be visible through the cache.
        lsq.store_addr_done(InstId(1));
        assert_actions_match_reference(&mut lsq);
        lsq.store_data_ready(InstId(1));
        lsq.pending_load_actions_into(&mut actions);
        assert_eq!(actions, vec![(InstId(2), LoadAction::Forward)]);
        lsq.load_started(InstId(2), true);
        lsq.pending_load_actions_into(&mut actions);
        assert!(actions.is_empty(), "started load leaves the pending set");
        // Committing the store invalidates too (no stale match survives).
        lsq.pop(InstId(1));
        lsq.push(InstId(9), false, 0x100);
        lsq.load_addr_done(InstId(9));
        lsq.pending_load_actions_into(&mut actions);
        assert_eq!(actions, vec![(InstId(9), LoadAction::Access)]);
    }
}
