//! Load/store queue: program-order memory disambiguation with
//! store-to-load forwarding.
//!
//! Loads are split into address generation (issued by the scheduler onto an
//! integer ALU) and the memory access, which may start only once every
//! older store's address is known — the conservative policy the paper's
//! `AllStoreAddr` estimation mirrors. A load whose address matches an older
//! store forwards the store's data instead of accessing the cache.

use diq_isa::InstId;
use std::collections::VecDeque;

/// Word granularity used for matching (8-byte aligned, as the synthetic
/// traces issue 8-byte accesses).
fn dword(addr: u64) -> u64 {
    addr >> 3
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MemState {
    /// Waiting for issue / address generation.
    WaitAddr,
    /// (Loads) address known; waiting for disambiguation, a port, or data.
    WaitMem,
    /// Access in flight or complete.
    Done,
}

#[derive(Clone, Copy, Debug)]
struct LsqEntry {
    id: InstId,
    is_store: bool,
    addr: u64,
    state: MemState,
    /// Store address generation finished (younger loads may disambiguate).
    addr_known: bool,
    /// Store data value available (younger loads may forward).
    data_ready: bool,
}

/// The load/store queue.
#[derive(Clone, Debug, Default)]
pub struct Lsq {
    entries: VecDeque<LsqEntry>,
    /// Forwarding statistics.
    pub forwards: u64,
}

/// What a load in the memory phase should do this cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadAction {
    /// Blocked: an older store's address is unknown, or a matching older
    /// store's data is not complete yet.
    Wait,
    /// Forward from a completed matching store: result next cycle, no cache
    /// access.
    Forward,
    /// Access the data cache.
    Access,
}

impl Lsq {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates an entry at dispatch (program order).
    pub fn push(&mut self, id: InstId, is_store: bool, addr: u64) {
        self.entries.push_back(LsqEntry {
            id,
            is_store,
            addr,
            state: MemState::WaitAddr,
            addr_known: false,
            data_ready: false,
        });
    }

    fn entry_mut(&mut self, id: InstId) -> &mut LsqEntry {
        self.entries
            .iter_mut()
            .find(|e| e.id == id)
            .expect("LSQ entry exists")
    }

    /// A store finished address generation: younger loads can disambiguate
    /// against it.
    pub fn store_addr_done(&mut self, id: InstId) {
        let e = self.entry_mut(id);
        debug_assert!(e.is_store);
        e.addr_known = true;
        if e.data_ready {
            e.state = MemState::Done;
        }
    }

    /// A store's data value became available: younger matching loads can
    /// forward from it.
    pub fn store_data_ready(&mut self, id: InstId) {
        let e = self.entry_mut(id);
        debug_assert!(e.is_store);
        e.data_ready = true;
        if e.addr_known {
            e.state = MemState::Done;
        }
    }

    /// A load finished address generation: it enters the memory phase.
    pub fn load_addr_done(&mut self, id: InstId) {
        let e = self.entry_mut(id);
        debug_assert!(!e.is_store);
        e.state = MemState::WaitMem;
    }

    /// Loads currently in the memory phase, oldest first.
    #[must_use]
    pub fn pending_loads(&self) -> Vec<InstId> {
        self.entries
            .iter()
            .filter(|e| !e.is_store && e.state == MemState::WaitMem)
            .map(|e| e.id)
            .collect()
    }

    /// Decides what load `id` may do this cycle.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a load in the memory phase.
    #[must_use]
    pub fn load_action(&self, id: InstId) -> LoadAction {
        let pos = self
            .entries
            .iter()
            .position(|e| e.id == id)
            .expect("load in LSQ");
        let load = &self.entries[pos];
        assert!(!load.is_store && load.state == MemState::WaitMem);
        let mut forward = false;
        for e in self.entries.iter().take(pos) {
            if !e.is_store {
                continue;
            }
            if !e.addr_known {
                // Unknown older store address: conservative wait.
                return LoadAction::Wait;
            }
            if dword(e.addr) == dword(load.addr) {
                if !e.data_ready {
                    // The matching store's value does not exist yet.
                    return LoadAction::Wait;
                }
                forward = true; // youngest older match wins; keep scanning
            }
        }
        if forward {
            LoadAction::Forward
        } else {
            LoadAction::Access
        }
    }

    /// Marks a load's access as started (it will complete via the event
    /// queue) and counts forwarding.
    pub fn load_started(&mut self, id: InstId, forwarded: bool) {
        if forwarded {
            self.forwards += 1;
        }
        self.entry_mut(id).state = MemState::Done;
    }

    /// Removes the (oldest) entry at commit.
    pub fn pop(&mut self, id: InstId) {
        debug_assert_eq!(self.entries.front().map(|e| e.id), Some(id));
        self.entries.pop_front();
    }

    /// Live entries (diagnostics).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_waits_for_older_store_address() {
        let mut lsq = Lsq::new();
        lsq.push(InstId(1), true, 0x100);
        lsq.push(InstId(2), false, 0x200);
        lsq.load_addr_done(InstId(2));
        assert_eq!(lsq.load_action(InstId(2)), LoadAction::Wait);
        lsq.store_addr_done(InstId(1));
        assert_eq!(lsq.load_action(InstId(2)), LoadAction::Access);
    }

    #[test]
    fn matching_store_forwards() {
        let mut lsq = Lsq::new();
        lsq.push(InstId(1), true, 0x100);
        lsq.push(InstId(2), false, 0x100);
        lsq.store_addr_done(InstId(1));
        lsq.load_addr_done(InstId(2));
        // Address known but data still pending: the load must wait…
        assert_eq!(lsq.load_action(InstId(2)), LoadAction::Wait);
        lsq.store_data_ready(InstId(1));
        // …then forward once the value exists.
        assert_eq!(lsq.load_action(InstId(2)), LoadAction::Forward);
        lsq.load_started(InstId(2), true);
        assert_eq!(lsq.forwards, 1);
    }

    #[test]
    fn younger_stores_do_not_affect_loads() {
        let mut lsq = Lsq::new();
        lsq.push(InstId(1), false, 0x100);
        lsq.push(InstId(2), true, 0x100); // younger store
        lsq.load_addr_done(InstId(1));
        assert_eq!(lsq.load_action(InstId(1)), LoadAction::Access);
    }

    #[test]
    fn word_granularity_matching() {
        let mut lsq = Lsq::new();
        lsq.push(InstId(1), true, 0x100);
        lsq.push(InstId(2), false, 0x104); // same 8-byte word
        lsq.push(InstId(3), false, 0x108); // next word
        lsq.store_addr_done(InstId(1));
        lsq.store_data_ready(InstId(1));
        lsq.load_addr_done(InstId(2));
        lsq.load_addr_done(InstId(3));
        assert_eq!(lsq.load_action(InstId(2)), LoadAction::Forward);
        assert_eq!(lsq.load_action(InstId(3)), LoadAction::Access);
    }

    #[test]
    fn commit_pops_in_order() {
        let mut lsq = Lsq::new();
        lsq.push(InstId(1), true, 0x100);
        lsq.push(InstId(2), false, 0x200);
        lsq.store_addr_done(InstId(1));
        lsq.store_data_ready(InstId(1));
        lsq.pop(InstId(1));
        assert_eq!(lsq.len(), 1);
    }

    #[test]
    fn pending_loads_in_program_order() {
        let mut lsq = Lsq::new();
        lsq.push(InstId(3), false, 0x1);
        lsq.push(InstId(5), false, 0x2);
        lsq.load_addr_done(InstId(5));
        lsq.load_addr_done(InstId(3));
        assert_eq!(lsq.pending_loads(), vec![InstId(3), InstId(5)]);
    }
}
