//! Per-stage wall-clock profiling of the cycle loop.
//!
//! Compiled in only under the `profile` cargo feature: each pipeline stage
//! call in [`Simulator::run_workload`] is bracketed by an rdtsc-style
//! timestamp and the deltas accumulate into a [`StageProfile`]. With the
//! feature off the sampling code vanishes entirely (the timer type is a
//! ZST and every lap is a no-op), so the default build pays nothing.
//!
//! The profile is *not* part of [`SimStats`](crate::SimStats) — statistics
//! are bit-identical across scan/event scheduler implementations and must
//! not depend on host timing. Read it with
//! [`Simulator::take_stage_profile`](crate::Simulator::take_stage_profile)
//! after a run.

/// Stage slots of a [`StageProfile`], in front-to-back pipeline order.
///
/// Rename and dispatch are one stage on this machine (renaming happens in
/// the dispatch stage), so they share a slot.
pub mod stage {
    /// Fetch (I-cache probe, branch prediction, batch refill).
    pub const FETCH: usize = 0;
    /// Rename + dispatch (one pipeline stage on this machine).
    pub const RENAME_DISPATCH: usize = 1;
    /// Wakeup/select in the issue queues.
    pub const ISSUE: usize = 2;
    /// LSQ disambiguation and D-cache access initiation.
    pub const MEMORY: usize = 3;
    /// Completion-event drain, recovery, replay cancels.
    pub const WRITEBACK: usize = 4;
    /// In-order retirement.
    pub const COMMIT: usize = 5;
    /// Display names, indexed by the constants above.
    pub const NAMES: [&str; 6] = [
        "fetch",
        "rename_dispatch",
        "issue",
        "memory",
        "writeback",
        "commit",
    ];
}

/// Accumulated per-stage wall-clock ticks for one run.
///
/// Ticks are rdtsc cycles on x86-64 (wall nanoseconds elsewhere); only the
/// *shares* are meaningful across machines.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StageProfile {
    /// Accumulated ticks per stage, indexed by the [`stage`] constants.
    pub ticks: [u64; 6],
    /// Simulated cycles the ticks were collected over.
    pub cycles: u64,
}

impl StageProfile {
    /// Whether the build actually samples (the `profile` cargo feature).
    pub const ENABLED: bool = cfg!(feature = "profile");

    /// Total ticks across all stages.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.ticks.iter().sum()
    }

    /// Fraction of total ticks per stage (zeros when nothing was sampled).
    #[must_use]
    pub fn shares(&self) -> [f64; 6] {
        let total = self.total();
        if total == 0 {
            return [0.0; 6];
        }
        self.ticks.map(|t| t as f64 / total as f64)
    }

    /// `(stage name, share)` pairs in pipeline order.
    pub fn named_shares(&self) -> impl Iterator<Item = (&'static str, f64)> {
        stage::NAMES.into_iter().zip(self.shares())
    }

    /// Folds another profile into this one.
    pub fn merge(&mut self, other: &StageProfile) {
        for (a, b) in self.ticks.iter_mut().zip(other.ticks) {
            *a += b;
        }
        self.cycles += other.cycles;
    }
}

#[cfg(feature = "profile")]
#[inline]
fn now_ticks() -> u64 {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: rdtsc is unprivileged and side-effect-free.
    unsafe {
        core::arch::x86_64::_rdtsc()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        use std::sync::OnceLock;
        use std::time::Instant;
        static BASE: OnceLock<Instant> = OnceLock::new();
        BASE.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
}

/// Brackets the stage calls inside one simulated cycle. A ZST no-op unless
/// the `profile` feature is enabled.
pub(crate) struct StageTimer {
    #[cfg(feature = "profile")]
    last: u64,
}

impl StageTimer {
    #[inline]
    pub(crate) fn start() -> Self {
        StageTimer {
            #[cfg(feature = "profile")]
            last: now_ticks(),
        }
    }

    /// Charges the ticks since the previous lap to `stage`.
    #[inline]
    pub(crate) fn lap(&mut self, _profile: &mut StageProfile, _stage: usize) {
        #[cfg(feature = "profile")]
        {
            let t = now_ticks();
            _profile.ticks[_stage] += t.wrapping_sub(self.last);
            self.last = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one_when_sampled() {
        let p = StageProfile {
            ticks: [10, 20, 30, 15, 15, 10],
            cycles: 5,
        };
        let sum: f64 = p.shares().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(p.total(), 100);
        let names: Vec<_> = p.named_shares().map(|(n, _)| n).collect();
        assert_eq!(names, stage::NAMES);
    }

    #[test]
    fn empty_profile_has_zero_shares() {
        let p = StageProfile::default();
        assert_eq!(p.shares(), [0.0; 6]);
        assert_eq!(p.total(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = StageProfile {
            ticks: [1; 6],
            cycles: 2,
        };
        let b = StageProfile {
            ticks: [3; 6],
            cycles: 4,
        };
        a.merge(&b);
        assert_eq!(a.ticks, [4; 6]);
        assert_eq!(a.cycles, 6);
    }
}
