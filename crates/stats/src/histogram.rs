//! A small integer histogram for occupancy/latency distributions.

use std::fmt;

/// Histogram over `u64` samples with unit-width buckets up to a cap.
///
/// Samples at or above the cap land in the final overflow bucket. Used for
/// issue-queue occupancy and chain-count distributions in the evaluation.
///
/// # Example
///
/// ```
/// use diq_stats::Histogram;
///
/// let mut h = Histogram::new(4);
/// h.record(0);
/// h.record(2);
/// h.record(99); // overflow bucket
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bucket(2), 1);
/// assert_eq!(h.overflow(), 1);
/// assert!((h.mean() - (0.0 + 2.0 + 99.0) / 3.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with unit buckets `0..cap` plus an overflow
    /// bucket.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "histogram needs at least one bucket");
        Histogram {
            buckets: vec![0; cap + 1],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let idx = (value as usize).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Count in bucket `i` (`i < cap`).
    #[must_use]
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i.min(self.buckets.len() - 1)]
    }

    /// Count of samples that hit the overflow bucket.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        *self.buckets.last().expect("non-empty")
    }

    /// Mean of all recorded samples (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded sample.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Fraction of samples with value ≥ `threshold` (0.0 when empty).
    ///
    /// Values beyond the cap are counted via the overflow bucket, so the
    /// result is exact only for `threshold < cap`.
    #[must_use]
    pub fn frac_at_least(&self, threshold: usize) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let tail: u64 = self.buckets[threshold.min(self.buckets.len() - 1)..]
            .iter()
            .sum();
        tail as f64 / self.count as f64
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.2} max={}",
            self.count,
            self.mean(),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_overflows() {
        let mut h = Histogram::new(2);
        for v in [0, 1, 1, 2, 5] {
            h.record(v);
        }
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 2);
        assert_eq!(h.overflow(), 2); // 2 and 5 both land at/after cap
        assert_eq!(h.max(), 5);
    }

    #[test]
    fn frac_at_least() {
        let mut h = Histogram::new(8);
        for v in 0..10u64 {
            h.record(v);
        }
        assert!((h.frac_at_least(5) - 0.5).abs() < 1e-12);
        assert_eq!(h.frac_at_least(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_cap_panics() {
        let _ = Histogram::new(0);
    }
}
