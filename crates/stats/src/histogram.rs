//! A small integer histogram for occupancy/latency distributions.

use std::fmt;

/// Histogram over `u64` samples with unit-width buckets up to a cap.
///
/// Samples at or above the cap land in the final overflow bucket. Used for
/// issue-queue occupancy and chain-count distributions in the evaluation.
///
/// # Example
///
/// ```
/// use diq_stats::Histogram;
///
/// let mut h = Histogram::new(4);
/// h.record(0);
/// h.record(2);
/// h.record(99); // overflow bucket
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bucket(2), 1);
/// assert_eq!(h.overflow(), 1);
/// assert!((h.mean() - (0.0 + 2.0 + 99.0) / 3.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with unit buckets `0..cap` plus an overflow
    /// bucket.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "histogram needs at least one bucket");
        Histogram {
            buckets: vec![0; cap + 1],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let idx = (value as usize).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Count in bucket `i` (`i < cap`).
    #[must_use]
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i.min(self.buckets.len() - 1)]
    }

    /// Count of samples that hit the overflow bucket.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        *self.buckets.last().expect("non-empty")
    }

    /// Mean of all recorded samples (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded sample.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `p`-th percentile (0 ≤ `p` ≤ 100, clamped) of the recorded
    /// samples: the smallest bucket value whose cumulative count covers
    /// `p`% of all samples.
    ///
    /// Returns `None` when the histogram is empty — an empty distribution
    /// has no percentiles, and a sentinel like 0 would be indistinguishable
    /// from a real all-zero distribution. Percentiles landing in the
    /// overflow bucket report [`max`](Histogram::max): per-value resolution
    /// ends at the cap, and the true maximum is the tightest bound the
    /// histogram still tracks.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        // Rank of the sample that covers p% of the mass, 1-based; p = 0
        // degenerates to the minimum rather than an out-of-range rank 0.
        let rank = ((p.clamp(0.0, 100.0) / 100.0 * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(if i == self.buckets.len() - 1 {
                    self.max
                } else {
                    i as u64
                });
            }
        }
        unreachable!("cumulative bucket mass covers every rank up to count")
    }

    /// Fraction of samples with value ≥ `threshold` (0.0 when empty).
    ///
    /// Values beyond the cap are counted via the overflow bucket, so the
    /// result is exact only for `threshold < cap`.
    #[must_use]
    pub fn frac_at_least(&self, threshold: usize) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let tail: u64 = self.buckets[threshold.min(self.buckets.len() - 1)..]
            .iter()
            .sum();
        tail as f64 / self.count as f64
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.2} max={}",
            self.count,
            self.mean(),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_overflows() {
        let mut h = Histogram::new(2);
        for v in [0, 1, 1, 2, 5] {
            h.record(v);
        }
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 2);
        assert_eq!(h.overflow(), 2); // 2 and 5 both land at/after cap
        assert_eq!(h.max(), 5);
    }

    #[test]
    fn frac_at_least() {
        let mut h = Histogram::new(8);
        for v in 0..10u64 {
            h.record(v);
        }
        assert!((h.frac_at_least(5) - 0.5).abs() < 1e-12);
        assert_eq!(h.frac_at_least(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_cap_panics() {
        let _ = Histogram::new(0);
    }

    #[test]
    fn empty_histogram_queries_are_well_defined() {
        let h = Histogram::new(4);
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.0), None);
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.percentile(100.0), None);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.frac_at_least(0), 0.0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn percentiles_walk_the_distribution() {
        let mut h = Histogram::new(16);
        for v in 0..10u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), Some(0), "p0 is the minimum");
        assert_eq!(h.percentile(10.0), Some(0), "rank 1 of 10");
        assert_eq!(h.percentile(50.0), Some(4), "rank 5 of 10");
        assert_eq!(h.percentile(90.0), Some(8));
        assert_eq!(h.percentile(100.0), Some(9), "p100 is the maximum");
        // Out-of-range p clamps instead of panicking or extrapolating.
        assert_eq!(h.percentile(-3.0), Some(0));
        assert_eq!(h.percentile(250.0), Some(9));
    }

    #[test]
    fn single_bucket_saturation() {
        // cap = 1: one real bucket (value 0) plus overflow — the smallest
        // legal geometry. Everything ≥ 1 saturates into overflow.
        let mut h = Histogram::new(1);
        for v in [0, 0, 1, 7, 1000] {
            h.record(v);
        }
        assert_eq!(h.bucket(0), 2);
        assert_eq!(h.overflow(), 3);
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 1000);
        // Percentiles inside the real bucket resolve exactly; the rest
        // saturate to the tracked maximum, not to the cap.
        assert_eq!(h.percentile(40.0), Some(0));
        assert_eq!(h.percentile(100.0), Some(1000));
        assert!((h.mean() - 1008.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn overflow_bucket_accounting_stays_exact() {
        let mut h = Histogram::new(4);
        for v in [4, 5, 6, 1_000_000] {
            h.record(v); // all at/past the cap
        }
        // Every sample is in the overflow bucket, none in the real ones.
        assert_eq!(h.overflow(), 4);
        assert_eq!((0..4).map(|i| h.bucket(i)).sum::<u64>(), 0);
        // Sum/mean/max use the true values, not the clamped bucket index.
        assert_eq!(h.max(), 1_000_000);
        assert!((h.mean() - 1_000_015.0 / 4.0).abs() < 1e-9);
        // frac_at_least is exact below the cap and conflates past it: a
        // threshold beyond the cap still reports the whole overflow tail.
        assert_eq!(h.frac_at_least(4), 1.0);
        assert_eq!(h.frac_at_least(100), 1.0);
        // Any percentile lands in overflow and reports the maximum.
        assert_eq!(h.percentile(1.0), Some(1_000_000));
    }
}
