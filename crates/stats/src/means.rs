//! Mean and ratio helpers used when aggregating per-benchmark results.

/// Arithmetic mean. Returns `None` for an empty input.
///
/// # Example
///
/// ```
/// assert_eq!(diq_stats::arithmetic_mean([1.0, 3.0]), Some(2.0));
/// assert_eq!(diq_stats::arithmetic_mean([]), None);
/// ```
pub fn arithmetic_mean<I: IntoIterator<Item = f64>>(xs: I) -> Option<f64> {
    let mut sum = 0.0;
    let mut n = 0usize;
    for x in xs {
        sum += x;
        n += 1;
    }
    (n > 0).then(|| sum / n as f64)
}

/// Harmonic mean — the aggregation the paper uses for IPC ("HARMEAN" in
/// Figures 7 and 8). Returns `None` for an empty input or any element that
/// is not strictly positive (zero, negative, or NaN).
///
/// # Example
///
/// ```
/// let hm = diq_stats::harmonic_mean([2.0, 4.0]).unwrap();
/// assert!((hm - 8.0 / 3.0).abs() < 1e-12);
/// ```
pub fn harmonic_mean<I: IntoIterator<Item = f64>>(xs: I) -> Option<f64> {
    let mut inv_sum = 0.0;
    let mut n = 0usize;
    for x in xs {
        // The explicit NaN check matters: `x <= 0.0` alone waves NaN
        // through (every comparison with NaN is false) and it would poison
        // the accumulator into a silent Some(NaN).
        if x.is_nan() || x <= 0.0 {
            return None;
        }
        inv_sum += 1.0 / x;
        n += 1;
    }
    (n > 0).then(|| n as f64 / inv_sum)
}

/// Geometric mean. Returns `None` for an empty input or any element that is
/// not strictly positive (zero, negative, or NaN).
///
/// # Example
///
/// ```
/// let gm = diq_stats::geometric_mean([1.0, 4.0]).unwrap();
/// assert!((gm - 2.0).abs() < 1e-12);
/// ```
pub fn geometric_mean<I: IntoIterator<Item = f64>>(xs: I) -> Option<f64> {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for x in xs {
        if x.is_nan() || x <= 0.0 {
            return None;
        }
        log_sum += x.ln();
        n += 1;
    }
    (n > 0).then(|| (log_sum / n as f64).exp())
}

/// Percentage *loss* of `value` relative to `baseline`, i.e.
/// `100 * (baseline - value) / baseline` — the quantity plotted in the
/// paper's Figures 2–4 and 6 ("% IPC loss w.r.t. baseline").
///
/// # Example
///
/// ```
/// assert!((diq_stats::pct_loss(2.0, 1.9) - 5.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn pct_loss(baseline: f64, value: f64) -> f64 {
    100.0 * (baseline - value) / baseline
}

/// Percentage *change* of `value` relative to `baseline`
/// (`100 * (value - baseline) / baseline`; negative means a reduction).
///
/// # Example
///
/// ```
/// assert!((diq_stats::pct_change(2.0, 1.3) + 35.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn pct_change(baseline: f64, value: f64) -> f64 {
    100.0 * (value - baseline) / baseline
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_mean_dominated_by_small_values() {
        let hm = harmonic_mean([1.0, 100.0]).unwrap();
        assert!(hm < 2.0, "harmonic mean should hug the minimum, got {hm}");
    }

    #[test]
    fn harmonic_mean_rejects_nonpositive() {
        assert_eq!(harmonic_mean([1.0, 0.0]), None);
        assert_eq!(harmonic_mean([1.0, -1.0]), None);
        assert_eq!(harmonic_mean([]), None);
    }

    #[test]
    fn means_reject_nan() {
        // NaN sails through an `x <= 0.0` guard (all NaN comparisons are
        // false) and poisons the accumulator; the guards must catch it.
        assert_eq!(harmonic_mean([1.0, f64::NAN]), None);
        assert_eq!(geometric_mean([1.0, f64::NAN]), None);
        assert_eq!(geometric_mean([f64::NAN]), None);
    }

    #[test]
    fn means_agree_on_constant_input() {
        let fns: [fn([f64; 3]) -> Option<f64>; 3] = [
            arithmetic_mean::<[f64; 3]>,
            harmonic_mean::<[f64; 3]>,
            geometric_mean::<[f64; 3]>,
        ];
        for f in fns {
            let m = f([3.0, 3.0, 3.0]).unwrap();
            assert!((m - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn pct_helpers_are_inverses_in_sign() {
        assert_eq!(pct_loss(2.0, 2.0), 0.0);
        assert!(pct_loss(2.0, 1.0) > 0.0);
        assert!(pct_change(2.0, 1.0) < 0.0);
    }
}
