//! Statistics utilities for the simulator: counters, histograms, means, and
//! paper-style text tables.
//!
//! The experiment harness reports results the way the paper's figures do —
//! per-benchmark series plus a harmonic mean over IPCs — so this crate
//! provides exactly those primitives.
//!
//! # Example
//!
//! ```
//! use diq_stats::{harmonic_mean, Table};
//!
//! let ipcs = [2.0, 4.0];
//! assert!((harmonic_mean(ipcs).unwrap() - 8.0 / 3.0).abs() < 1e-12);
//!
//! let mut t = Table::new(["bench", "IPC"]);
//! t.row(["bzip2".to_string(), format!("{:.2}", 2.31)]);
//! assert!(t.render().contains("bzip2"));
//! ```

#![deny(missing_docs)]

mod histogram;
mod means;
mod table;

pub use histogram::Histogram;
pub use means::{arithmetic_mean, geometric_mean, harmonic_mean, pct_change, pct_loss};
pub use table::Table;

use std::collections::BTreeMap;
use std::fmt;

/// A set of named event counters.
///
/// Counters are created on first use and iterate in name order, so output is
/// deterministic.
///
/// # Example
///
/// ```
/// use diq_stats::Counters;
///
/// let mut c = Counters::new();
/// c.add("issued", 3);
/// c.bump("cycles");
/// assert_eq!(c.get("issued"), 3);
/// assert_eq!(c.get("cycles"), 1);
/// assert_eq!(c.get("missing"), 0);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    map: BTreeMap<&'static str, u64>,
}

impl Counters {
    /// Creates an empty counter set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter `name`.
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.map.entry(name).or_insert(0) += n;
    }

    /// Increments the counter `name` by one.
    pub fn bump(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Current value of `name` (0 if never touched).
    #[must_use]
    pub fn get(&self, name: &str) -> u64 {
        self.map.get(name).copied().unwrap_or(0)
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.map.iter().map(|(k, v)| (*k, *v))
    }

    /// Merges another counter set into this one (summing shared names).
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in self.iter() {
            writeln!(f, "{k:<32} {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_merge_and_iterate_deterministically() {
        let mut a = Counters::new();
        a.add("z", 1);
        a.add("a", 2);
        let mut b = Counters::new();
        b.add("a", 3);
        a.merge(&b);
        let v: Vec<_> = a.iter().collect();
        assert_eq!(v, [("a", 5), ("z", 1)]);
    }

    #[test]
    fn display_nonempty() {
        let mut c = Counters::new();
        c.bump("x");
        assert!(c.to_string().contains('x'));
    }
}
