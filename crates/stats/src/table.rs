//! Plain-text table rendering for experiment output.

use std::fmt;

/// A simple aligned text table.
///
/// The first column is left-aligned (benchmark names); all other columns are
/// right-aligned (numbers), matching how the paper's figures read as tables.
///
/// # Example
///
/// ```
/// use diq_stats::Table;
///
/// let mut t = Table::new(["bench", "IQ_64_64", "MB_distr"]);
/// t.row(["ammp", "1.52", "1.41"]);
/// t.row(["HARMEAN", "2.10", "1.94"]);
/// let s = t.render();
/// assert!(s.lines().count() >= 4); // header + rule + 2 rows
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's width differs from the header's.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
        self
    }

    /// Convenience: appends a row of a label plus `f64` values rendered with
    /// `prec` decimal places.
    pub fn row_f64(&mut self, label: &str, values: &[f64], prec: usize) -> &mut Self {
        let mut cells = vec![label.to_string()];
        cells.extend(values.iter().map(|v| format!("{v:.prec$}")));
        self.row(cells)
    }

    /// Number of data rows so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table to a `String` (also available via `Display`).
    #[must_use]
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}", w = widths[i]));
                } else {
                    line.push_str(&format!("{cell:>w$}", w = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["name", "v"]);
        t.row(["long-benchmark-name", "1"]);
        t.row(["x", "123"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // all lines equally wide
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        // numbers right-aligned
        assert!(lines[3].ends_with("123"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn row_f64_formats() {
        let mut t = Table::new(["b", "x", "y"]);
        t.row_f64("m", &[1.0, 2.345], 2);
        assert!(t.render().contains("2.35"));
    }
}
