//! The batched cycle loop allocates nothing in steady state: every
//! per-cycle structure (the fetch micro-batch, scheduler candidate
//! scratch, wakeup consumer lists, recovery scratch) is either sized at
//! construction or reuses its capacity across cycles.
//!
//! Proof shape: run the same workload for a short and a 4× longer budget
//! on fresh simulators and count heap allocations during each run with a
//! counting global allocator. Warm-up growth (first-touch capacity of the
//! scratch vectors) is identical in both runs, so if the long run
//! allocates *at all* after warm-up the counts differ. This is an
//! integration test on purpose: `#[global_allocator]` is per-binary, so
//! the counter cannot interfere with any other test.

use diq::isa::ProcessorConfig;
use diq::pipeline::{Simulator, TraceSource};
use diq::sched::SchedulerConfig;
use diq::workload::{suite, trace, TraceGenerator, TraceReader};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Allocations performed while running `instructions` of `trace` on a
/// fresh simulator (simulator construction is outside the count — it
/// allocates the fixed-capacity stores by design).
fn allocations_during_run(
    cfg: &ProcessorConfig,
    sched: &SchedulerConfig,
    trace: &[diq::isa::Inst],
    instructions: u64,
) -> u64 {
    let mut sim = Simulator::new(cfg, sched);
    let mut source = TraceSource::new(trace.iter().copied().take(instructions as usize));
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let stats = sim.run_workload(&mut source, instructions);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(stats.committed, instructions);
    after - before
}

/// Allocations while replaying `instructions` from an opened trace reader
/// (reader + simulator construction excluded: the reader's two block
/// buffers are preallocated from the footer maxima at open).
fn allocations_during_replay(
    cfg: &ProcessorConfig,
    sched: &SchedulerConfig,
    reader: &mut TraceReader,
    instructions: u64,
    speculative: bool,
) -> u64 {
    let mut sim = Simulator::new(cfg, sched);
    reader.set_speculative(speculative);
    reader.set_limit(instructions);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let stats = sim.run_workload(reader, instructions);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(reader.error(), None);
    assert_eq!(stats.committed, instructions);
    after - before
}

/// Replaying a 1M-instruction trace allocates no more than replaying a
/// short prefix of it: reader memory is a function of the block geometry,
/// never of trace length. In wrong-path mode the pipeline's recovery
/// machinery itself allocates per mispredict (pre-existing, source-
/// independent), so there the reader is held to the generator's bar: a
/// `Copy` trace-position checkpoint must never allocate more than the
/// generator's buffer-reusing checkpoints.
#[test]
fn trace_replay_allocates_nothing_in_steady_state() {
    let cfg = ProcessorConfig::hpca2004();
    let spec = suite::by_name("gzip").expect("suite benchmark");
    let path = std::env::temp_dir().join(format!("diqt-alloc-{}.diqt", std::process::id()));
    let total = 1_000_000u64;
    trace::record(
        &path,
        &spec.name,
        spec.seed,
        "alloc-test",
        TraceGenerator::new(&spec),
        total,
    )
    .unwrap();
    let short = 5_000u64;
    let long = 20_000u64;
    for sched in SchedulerConfig::known() {
        let mut reader = TraceReader::open(&path).unwrap();
        let warm = allocations_during_replay(&cfg, &sched, &mut reader, short, false);
        let mut reader = TraceReader::open(&path).unwrap();
        let sustained = allocations_during_replay(&cfg, &sched, &mut reader, long, false);
        assert_eq!(
            warm,
            sustained,
            "{}: {} allocations for {short} instrs but {} for {long} — \
             trace replay allocates in steady state",
            sched.label(),
            warm,
            sustained
        );
    }

    let mut wp_cfg = cfg;
    wp_cfg.wrong_path = true;
    for sched in [SchedulerConfig::mb_distr(), SchedulerConfig::iq_64_64()] {
        let mut sim = Simulator::new(&wp_cfg, &sched);
        let mut generator = TraceGenerator::new(&spec);
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        let _ = sim.run_workload(&mut generator, long);
        let from_generator = ALLOCATIONS.load(Ordering::Relaxed) - before;

        let mut reader = TraceReader::open(&path).unwrap();
        let from_replay = allocations_during_replay(&wp_cfg, &sched, &mut reader, long, true);
        assert!(
            from_replay <= from_generator,
            "{}: wrong-path replay made {from_replay} allocations, the generator \
             {from_generator} — TracePos checkpoints must not add allocation",
            sched.label()
        );
    }
    let _ = std::fs::remove_file(path);
}

#[test]
fn batched_loop_allocates_nothing_in_steady_state() {
    let cfg = ProcessorConfig::hpca2004();
    let spec = suite::by_name("gzip").expect("suite benchmark");
    let short = 5_000u64;
    let long = 20_000u64;
    let trace = spec.generate(long as usize);
    for sched in SchedulerConfig::known() {
        let warm = allocations_during_run(&cfg, &sched, &trace, short);
        let sustained = allocations_during_run(&cfg, &sched, &trace, long);
        assert_eq!(
            warm,
            sustained,
            "{}: {} allocations for {short} instrs but {} for {long} — \
             the cycle loop allocates in steady state",
            sched.label(),
            warm,
            sustained
        );
    }
}
