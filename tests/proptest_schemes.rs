//! Property tests: randomized workloads through every scheduler must never
//! deadlock, never issue an instruction before its operands exist, and must
//! conserve instructions (everything fetched commits exactly once).

use diq::isa::ProcessorConfig;
use diq::pipeline::{Simulator, TraceSource};
use diq::sched::SchedulerConfig;
use diq::workload::{BenchClass, BranchPattern, MemPattern, OpMix, WorkloadSpec};
use proptest::prelude::*;

/// A random but always-valid workload spec.
fn arb_workload() -> impl Strategy<Value = WorkloadSpec> {
    (
        1usize..=24,  // live chains
        1usize..=6,   // min chain len
        0usize..=6,   // extra chain len
        0.0f64..0.35, // load frac
        0.0f64..0.15, // store frac
        0.0f64..0.25, // branch frac
        0.5f64..0.98, // taken bias
        0.0f64..0.3,  // noise
        0.0f64..1.0,  // fp-ness of the mix
        any::<u64>(), // seed
    )
        .prop_map(
            |(chains, len_lo, len_extra, loads, stores, branches, bias, noise, fpness, seed)| {
                WorkloadSpec {
                    name: "prop".into(),
                    class: if fpness > 0.5 {
                        BenchClass::Fp
                    } else {
                        BenchClass::Int
                    },
                    live_chains: chains,
                    chain_len: (len_lo, len_lo + len_extra),
                    chain_starts_with_load: 0.5,
                    chain_ends_with_store: 0.3,
                    cross_dep_prob: 0.1,
                    mix: OpMix {
                        int_alu: 1.0 - fpness,
                        int_mul: 0.02,
                        int_div: 0.002,
                        fp_add: fpness,
                        fp_mul: fpness * 0.8,
                        fp_div: fpness * 0.02,
                    },
                    mem: MemPattern {
                        load_frac: loads,
                        store_frac: stores,
                        footprint_bytes: 1 << 18,
                        stride: 8,
                        random_frac: 0.2,
                        pointer_chase_frac: 0.05,
                    },
                    branch: BranchPattern {
                        branch_frac: branches,
                        taken_bias: bias,
                        noise,
                        sites: 64,
                        code_bytes: 4096,
                        call_frac: 0.03,
                    },
                    seed,
                }
            },
        )
        .prop_filter("fractions must leave room for arithmetic", |s| {
            s.validate().is_ok()
        })
}

fn schemes() -> Vec<SchedulerConfig> {
    vec![
        SchedulerConfig::iq_64_64(),
        SchedulerConfig::issue_fifo(4, 4, 4, 8),
        SchedulerConfig::lat_fifo(4, 4, 4, 8),
        SchedulerConfig::mix_buff(4, 4, 4, 8, Some(4)),
        SchedulerConfig::mb_distr(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// No deadlock, no dataflow violation, exact conservation — under every
    /// scheme, for arbitrary workload shapes.
    #[test]
    fn schedulers_are_sound_on_arbitrary_workloads(spec in arb_workload()) {
        let cfg = ProcessorConfig::hpca2004();
        let n = 600u64;
        let trace = spec.generate(n as usize);
        for inst in &trace {
            prop_assert!(inst.validate().is_ok(), "invalid instruction {inst}");
        }
        for sched in schemes() {
            let mut sim = Simulator::new(&cfg, &sched);
            sim.set_benchmark(&spec.name);
            // `run` panics internally on deadlock after 100k idle cycles.
            let stats = sim.run_workload(&mut TraceSource::new(trace.clone()), n);
            prop_assert_eq!(stats.committed, n, "{}", sched.label());
            prop_assert_eq!(stats.checker_violations, 0, "{}", sched.label());
            prop_assert_eq!(stats.issued, n, "{}", sched.label());
            prop_assert!(stats.cycles > 0);
        }
    }

    /// The same trace under a bigger CAM queue can only get faster (a
    /// monotonicity property of window sizes).
    #[test]
    fn bigger_cam_queue_never_hurts(seed in any::<u64>()) {
        let cfg = ProcessorConfig::hpca2004();
        let mut spec = diq::workload::kernels::parallel_fp_chains(12, 4);
        spec.seed = seed;
        let n = 800u64;
        let trace = spec.generate(n as usize);
        let small = {
            let mut sim = Simulator::new(&cfg, &SchedulerConfig::cam(16, 16, 2));
            sim.run_workload(&mut TraceSource::new(trace.clone()), n).cycles
        };
        let large = {
            let mut sim = Simulator::new(&cfg, &SchedulerConfig::cam(64, 64, 8));
            sim.run_workload(&mut TraceSource::new(trace.clone()), n).cycles
        };
        // Small tolerance: selection order can shift by a cycle or two.
        prop_assert!(large <= small + 4, "64-entry {large} vs 16-entry {small}");
    }
}
