//! Property tests for the micro-batched front end: the fetch stage pulls
//! instructions from the workload in fetch-width groups ([`TraceSource`]
//! and [`TraceGenerator`] both implement the `Workload` fill contract), so
//! the batch boundary is a new seam that must be invisible to the
//! architecture. These cases drive it with random widths — including width
//! 1 (every instruction is its own batch) and widths that do not divide the
//! instruction budget (the final batch is partial) — and with recoveries
//! that land mid-batch.

use diq::isa::ProcessorConfig;
use diq::pipeline::{Simulator, TraceSource};
use diq::sched::SchedulerConfig;
use diq::workload::{suite, TraceGenerator, WorkloadSpec};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    let names: Vec<String> = suite::all().into_iter().map(|w| w.name).collect();
    let count = names.len();
    (0usize..count, any::<u64>()).prop_map(move |(i, seed)| {
        let mut spec = suite::by_name(&names[i]).expect("suite benchmark");
        spec.seed = seed;
        spec
    })
}

/// Budgets chosen to land the last batch everywhere relative to the width:
/// exact multiples, one short, one over.
fn arb_budget() -> impl Strategy<Value = u64> {
    200u64..=620
}

/// Fetch widths around the seam: 1 (degenerate), odd widths that never
/// divide the budget evenly, the stock 8, and wider-than-stock.
fn arb_fetch_width() -> impl Strategy<Value = usize> {
    const WIDTHS: [usize; 5] = [1, 3, 5, 8, 13];
    (0usize..WIDTHS.len()).prop_map(|i| WIDTHS[i])
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        .. ProptestConfig::default()
    })]

    /// With wrong-path fetch off, a generator-backed workload and a
    /// pregenerated trace of the same spec are the same instruction stream
    /// — so the stats must be bit-identical no matter how the batch
    /// boundaries fall for either source.
    #[test]
    fn generator_and_trace_sources_agree_across_widths(
        spec in arb_spec(),
        n in arb_budget(),
        width in arb_fetch_width(),
    ) {
        let mut cfg = ProcessorConfig::hpca2004();
        cfg.fetch_width = width;
        let trace = spec.generate(n as usize);
        for sched in SchedulerConfig::known() {
            let mut from_trace = Simulator::new(&cfg, &sched);
            from_trace.set_benchmark(&spec.name);
            let trace_stats =
                from_trace.run_workload(&mut TraceSource::new(trace.clone()), n);

            let mut from_gen = Simulator::new(&cfg, &sched);
            from_gen.set_benchmark(&spec.name);
            let gen_stats = from_gen.run_workload(&mut TraceGenerator::new(&spec), n);

            prop_assert_eq!(
                &trace_stats,
                &gen_stats,
                "{}: trace vs generator diverge at fetch_width={}",
                sched.label(),
                width
            );
            prop_assert_eq!(trace_stats.committed, n, "{}", sched.label());
        }
    }

    /// Both speculation features on: squashes and replays land mid-batch
    /// (the buffered tail of a batch is wrong-path state and must be
    /// discarded with the rest), and every scheme must stay bit-identical
    /// to its frozen scan reference at every width.
    #[test]
    fn mid_batch_recoveries_stay_bit_identical_to_scan(
        spec in arb_spec(),
        n in arb_budget(),
        width in arb_fetch_width(),
    ) {
        let mut cfg = ProcessorConfig::hpca2004();
        cfg.fetch_width = width;
        cfg.wrong_path = true;
        cfg.load_hit_speculation = true;
        // A small D-cache keeps the speculative replay window open often.
        cfg.mem.dl1.size_bytes = 4096;
        for sched in SchedulerConfig::known() {
            let mut fast = Simulator::new(&cfg, &sched);
            fast.set_benchmark(&spec.name);
            let fast_stats = fast.run_workload(&mut TraceGenerator::new(&spec), n);

            let mut scan = Simulator::with_scheduler(&cfg, sched.build_scan(&cfg));
            scan.set_benchmark(&spec.name);
            let scan_stats = scan.run_workload(&mut TraceGenerator::new(&spec), n);

            prop_assert_eq!(
                &fast_stats,
                &scan_stats,
                "{}: scan vs event diverge with mid-batch recoveries at fetch_width={}",
                sched.label(),
                width
            );
            prop_assert_eq!(fast_stats.committed, n, "{}", sched.label());
            prop_assert_eq!(
                fast.queue_occupancy(),
                (0, 0),
                "{}: queues failed to drain",
                sched.label()
            );
        }
    }
}
