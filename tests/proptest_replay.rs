//! Property test for load-hit speculative wakeup with selective replay:
//! random miss patterns (footprints and D-cache geometries drawn per
//! case), random squash points (branch noise makes wrong-path recoveries
//! land at effectively random instruction ids), and tag aliasing (squash
//! rewinds the id counter and returns physical registers to the free-list
//! *front*, so the correct path reuses both namespaces immediately).
//!
//! Every registered scheme must stay **bit-identical** to its frozen scan
//! reference through speculative wakeups, miss cancels, held entries and
//! replays — and the machine must always drain: a lost wakeup (a replayed
//! consumer nobody re-wakes) deadlocks and trips the simulator's loud
//! 100k-cycle watchdog, while a double wakeup diverges from the scan model
//! or trips a debug assertion. The nastiest interleaving — a replayed load
//! that is *itself* squashed before (or after) it re-issues — occurs
//! constantly here because every case runs branchy code over a D-cache
//! small enough that most loads miss.

use diq::isa::ProcessorConfig;
use diq::pipeline::{Simulator, TraceSource};
use diq::sched::SchedulerConfig;
use diq::workload::{BenchClass, BranchPattern, MemPattern, OpMix, TraceGenerator, WorkloadSpec};
use proptest::prelude::*;

/// A random always-valid workload shaped to stress the replay window:
/// load-heavy, pointer-chasing, branchy enough to squash mid-window.
fn arb_workload() -> impl Strategy<Value = WorkloadSpec> {
    (
        1usize..=24,  // live chains
        1usize..=5,   // min chain len
        0usize..=5,   // extra chain len
        0.05f64..0.4, // load frac
        0.0f64..0.12, // store frac
        0.0f64..0.25, // branch frac
        0.0f64..0.3,  // branch noise
        0.0f64..0.6,  // pointer-chase frac
        0.0f64..1.0,  // fp-ness of the mix
        14u32..22,    // log2 footprint (16 KB .. 2 MB)
        any::<u64>(), // seed
    )
        .prop_map(
            |(
                chains,
                len_lo,
                len_extra,
                loads,
                stores,
                branches,
                noise,
                chase,
                fpness,
                lgfoot,
                seed,
            )| {
                WorkloadSpec {
                    name: "replayprop".into(),
                    class: if fpness > 0.5 {
                        BenchClass::Fp
                    } else {
                        BenchClass::Int
                    },
                    live_chains: chains,
                    chain_len: (len_lo, len_lo + len_extra),
                    chain_starts_with_load: 0.6,
                    chain_ends_with_store: 0.3,
                    cross_dep_prob: 0.1,
                    mix: OpMix {
                        int_alu: 1.0 - fpness,
                        int_mul: 0.02,
                        int_div: 0.002,
                        fp_add: fpness,
                        fp_mul: fpness * 0.8,
                        fp_div: fpness * 0.02,
                    },
                    mem: MemPattern {
                        load_frac: loads,
                        store_frac: stores,
                        footprint_bytes: 1 << lgfoot,
                        stride: 8,
                        random_frac: 0.5,
                        pointer_chase_frac: chase,
                    },
                    branch: BranchPattern {
                        branch_frac: branches,
                        taken_bias: 0.8,
                        noise,
                        sites: 64,
                        code_bytes: 4096,
                        call_frac: 0.03,
                    },
                    seed,
                }
            },
        )
        .prop_filter("fractions must leave room for arithmetic", |s| {
            s.validate().is_ok()
        })
}

/// A random D-cache small enough that misses are the common case: the
/// speculative window opens constantly, in every queue.
fn arb_dl1_bytes() -> impl Strategy<Value = usize> {
    (8usize..13).prop_map(|lg| 1usize << lg) // 256 B .. 4 KB
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        .. ProptestConfig::default()
    })]

    /// Oracle-off, replay-on: every registered scheme agrees with its scan
    /// reference bit for bit, retires the exact budget, drains, and obeys
    /// the replay identity `issued == committed + replayed`.
    #[test]
    fn scan_and_event_agree_with_load_hit_speculation(
        spec in arb_workload(),
        dl1 in arb_dl1_bytes(),
    ) {
        let mut cfg = ProcessorConfig::hpca2004();
        cfg.load_hit_speculation = true;
        cfg.mem.dl1.size_bytes = dl1;
        let n = 600u64;
        let trace = spec.generate(n as usize);
        for sched in SchedulerConfig::known() {
            let mut fast = Simulator::new(&cfg, &sched);
            fast.set_benchmark(&spec.name);
            let fast_stats = fast.run_workload(&mut TraceSource::new(trace.clone()), n);

            let mut scan = Simulator::with_scheduler(&cfg, sched.build_scan(&cfg));
            scan.set_benchmark(&spec.name);
            let scan_stats = scan.run_workload(&mut TraceSource::new(trace.clone()), n);

            prop_assert_eq!(
                &fast_stats,
                &scan_stats,
                "{}: SimStats diverge under load-hit speculation",
                sched.label()
            );
            prop_assert_eq!(fast_stats.checker_violations, 0, "{}", sched.label());
            prop_assert_eq!(fast_stats.committed, n, "{}", sched.label());
            prop_assert_eq!(
                fast_stats.issued,
                fast_stats.committed + fast_stats.replayed,
                "{}: every replay is exactly one extra issue pass",
                sched.label()
            );
            prop_assert_eq!(
                fast.queue_occupancy(),
                (0, 0),
                "{}: queues failed to drain after replays",
                sched.label()
            );
        }
    }

    /// Both speculations on: wrong-path squashes land inside speculative
    /// windows (killing speculating loads, held consumers, and
    /// replay-pending instructions at random points), ids and tags are
    /// reused by the refetched correct path, and the two models must still
    /// agree bit for bit and drain to empty.
    #[test]
    fn replayed_loads_survive_random_squashes(
        spec in arb_workload(),
        dl1 in arb_dl1_bytes(),
    ) {
        let mut cfg = ProcessorConfig::hpca2004();
        cfg.load_hit_speculation = true;
        cfg.wrong_path = true;
        cfg.mem.dl1.size_bytes = dl1;
        let n = 600u64;
        for sched in SchedulerConfig::known() {
            let mut fast = Simulator::new(&cfg, &sched);
            fast.set_benchmark(&spec.name);
            let mut program = TraceGenerator::new(&spec);
            let fast_stats = fast.run_workload(&mut program, n);

            let mut scan = Simulator::with_scheduler(&cfg, sched.build_scan(&cfg));
            scan.set_benchmark(&spec.name);
            let mut program = TraceGenerator::new(&spec);
            let scan_stats = scan.run_workload(&mut program, n);

            prop_assert_eq!(
                &fast_stats,
                &scan_stats,
                "{}: SimStats diverge with replay + wrong-path squashes",
                sched.label()
            );
            prop_assert_eq!(fast_stats.checker_violations, 0, "{}", sched.label());
            prop_assert_eq!(fast_stats.committed, n, "{}", sched.label());
            prop_assert_eq!(
                fast.queue_occupancy(),
                (0, 0),
                "{}: queues failed to drain after squashed replays",
                sched.label()
            );
            prop_assert_eq!(
                scan.queue_occupancy(),
                (0, 0),
                "{}: scan queues failed to drain",
                sched.label()
            );
        }
    }
}
