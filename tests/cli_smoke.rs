//! Smoke tests of the `diq` binary and its scheme registry: every label the
//! CLI advertises must round-trip through `scheme_by_name`, and the compiled
//! binary itself must list exactly those labels (so `cargo test` exercises
//! the bin target, not just the library).

use diq::cli::{known_schemes, scheme_by_name, SCHEME_LABELS};
use std::process::Command;

#[test]
fn every_advertised_label_round_trips() {
    for label in SCHEME_LABELS {
        let scheme = scheme_by_name(label)
            .unwrap_or_else(|| panic!("`{label}` is advertised but not resolvable"));
        assert_eq!(scheme.label(), label, "label must round-trip");
    }
}

#[test]
fn labels_match_known_schemes_in_order() {
    let labels: Vec<String> = known_schemes().iter().map(|s| s.label()).collect();
    assert_eq!(labels, SCHEME_LABELS);
}

#[test]
fn unknown_scheme_is_rejected() {
    assert!(scheme_by_name("IQ_9000").is_none());
    assert!(scheme_by_name("").is_none());
}

#[test]
fn diq_list_prints_every_scheme_and_benchmark() {
    let out = Command::new(env!("CARGO_BIN_EXE_diq"))
        .arg("list")
        .output()
        .expect("run `diq list`");
    assert!(out.status.success(), "`diq list` failed: {out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    for label in SCHEME_LABELS {
        assert!(stdout.contains(label), "`diq list` is missing `{label}`");
        // And what the binary prints must be resolvable right back.
        assert!(scheme_by_name(label).is_some());
    }
    for bench in diq::workload::suite::all() {
        assert!(
            stdout.contains(&bench.name),
            "`diq list` is missing benchmark `{}`",
            bench.name
        );
    }
}

#[test]
fn diq_without_arguments_exits_with_usage() {
    let out = Command::new(env!("CARGO_BIN_EXE_diq"))
        .output()
        .expect("run `diq`");
    assert_eq!(out.status.code(), Some(2), "usage exit code");
    let stderr = String::from_utf8(out.stderr).expect("utf-8 stderr");
    assert!(stderr.contains("usage"), "stderr should show usage");
}
