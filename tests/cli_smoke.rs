//! Smoke tests of the `diq` binary and its scheme registry: every label the
//! CLI advertises must round-trip through `scheme_by_name`, and the compiled
//! binary itself must list exactly those labels (so `cargo test` exercises
//! the bin target, not just the library).

use diq::cli::{known_schemes, scheme_by_name, SCHEME_LABELS};
use std::process::Command;

#[test]
fn every_advertised_label_round_trips() {
    for label in SCHEME_LABELS {
        let scheme = scheme_by_name(label)
            .unwrap_or_else(|| panic!("`{label}` is advertised but not resolvable"));
        assert_eq!(scheme.label(), label, "label must round-trip");
    }
}

#[test]
fn labels_match_known_schemes_in_order() {
    let labels: Vec<String> = known_schemes().iter().map(|s| s.label()).collect();
    assert_eq!(labels, SCHEME_LABELS);
}

#[test]
fn unknown_scheme_is_rejected() {
    assert!(scheme_by_name("IQ_9000").is_none());
    assert!(scheme_by_name("").is_none());
}

#[test]
fn diq_list_prints_every_scheme_and_benchmark() {
    let out = Command::new(env!("CARGO_BIN_EXE_diq"))
        .arg("list")
        .output()
        .expect("run `diq list`");
    assert!(out.status.success(), "`diq list` failed: {out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    for label in SCHEME_LABELS {
        assert!(stdout.contains(label), "`diq list` is missing `{label}`");
        // And what the binary prints must be resolvable right back.
        assert!(scheme_by_name(label).is_some());
    }
    for bench in diq::workload::suite::all() {
        assert!(
            stdout.contains(&bench.name),
            "`diq list` is missing benchmark `{}`",
            bench.name
        );
    }
}

#[test]
fn diq_without_arguments_exits_with_usage() {
    let out = Command::new(env!("CARGO_BIN_EXE_diq"))
        .output()
        .expect("run `diq`");
    assert_eq!(out.status.code(), Some(2), "usage exit code");
    let stderr = String::from_utf8(out.stderr).expect("utf-8 stderr");
    assert!(stderr.contains("usage"), "stderr should show usage");
}

#[test]
fn diq_trace_record_info_run_round_trip() {
    let dir = std::env::temp_dir();
    let trace_path = dir.join(format!("diqt-cli-{}.diqt", std::process::id()));
    let out = Command::new(env!("CARGO_BIN_EXE_diq"))
        .args([
            "trace",
            "record",
            "profile:gzip/adversarial@5",
            "-n",
            "2k",
            "-o",
        ])
        .arg(&trace_path)
        .output()
        .expect("run `diq trace record`");
    assert!(out.status.success(), "record failed: {out:?}");

    let out = Command::new(env!("CARGO_BIN_EXE_diq"))
        .args(["trace", "info"])
        .arg(&trace_path)
        .arg("--json")
        .output()
        .expect("run `diq trace info`");
    assert!(out.status.success(), "info failed: {out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"instructions\":2000"), "{stdout}");
    assert!(
        stdout.contains("\"name\":\"gzip/adversarial@5\""),
        "{stdout}"
    );
    assert!(stdout.contains("\"content\":\""), "{stdout}");

    // The recorded trace replays through `diq run` by URI.
    let uri = format!("trace:{}", trace_path.display());
    let out = Command::new(env!("CARGO_BIN_EXE_diq"))
        .args(["run", "MB_distr", &uri, "2000"])
        .output()
        .expect("run `diq run trace:`");
    assert!(out.status.success(), "replay failed: {out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("gzip/adversarial@5"), "{stdout}");

    let _ = std::fs::remove_file(trace_path);
}

#[test]
fn diq_trace_ingest_accepts_csv() {
    let dir = std::env::temp_dir();
    let csv_path = dir.join(format!("diqt-cli-in-{}.csv", std::process::id()));
    let trace_path = dir.join(format!("diqt-cli-in-{}.diqt", std::process::id()));
    std::fs::write(
        &csv_path,
        "pc,op,dst,src1,src2,addr,size,taken,target\n\
         0x1000,alu,r1,r2,r3,,,,\n\
         0x1004,load,r4,r1,,0x2000,8,,\n\
         0x1008,br,,r4,,,,1,0x1000\n",
    )
    .unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_diq"))
        .args(["trace", "ingest"])
        .arg(&csv_path)
        .arg("-o")
        .arg(&trace_path)
        .output()
        .expect("run `diq trace ingest`");
    assert!(out.status.success(), "ingest failed: {out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("ingested 3 instrs"), "{stdout}");
    let _ = std::fs::remove_file(csv_path);
    let _ = std::fs::remove_file(trace_path);
}

#[test]
fn diq_run_resolves_workload_uris() {
    for uri in ["kernel:gzip", "profile:swim/stress", "gzip/expected@2"] {
        let out = Command::new(env!("CARGO_BIN_EXE_diq"))
            .args(["run", "MB_distr", uri, "500"])
            .output()
            .expect("run `diq run`");
        assert!(out.status.success(), "`diq run {uri}` failed: {out:?}");
    }
    let out = Command::new(env!("CARGO_BIN_EXE_diq"))
        .args(["run", "MB_distr", "trace:/nonexistent.diqt", "500"])
        .output()
        .expect("run `diq run`");
    assert!(!out.status.success(), "missing trace must fail");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("error"), "{stderr}");
}
