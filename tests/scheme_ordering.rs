//! The paper's qualitative results, asserted as invariants: performance
//! ordering of the schemes on wide-DDG FP work, and energy ordering of the
//! structures.

use diq::isa::ProcessorConfig;
use diq::pipeline::{SimStats, Simulator, TraceSource};
use diq::sched::SchedulerConfig;
use diq::workload::{kernels, suite};

fn run(sched: &SchedulerConfig, spec: &diq::workload::WorkloadSpec, n: u64) -> SimStats {
    let cfg = ProcessorConfig::hpca2004();
    let mut sim = Simulator::new(&cfg, sched);
    sim.set_benchmark(&spec.name);
    sim.run_workload(&mut TraceSource::new(spec.generate(n as usize)), n)
}

/// On a chain-churn kernel wider than the queue count, the paper's ordering
/// must hold: baseline ≥ MixBUFF ≥ LatFIFO ≥ IssueFIFO.
#[test]
fn fp_scheme_ordering_on_wide_ddg() {
    let spec = kernels::parallel_fp_chains(16, 2);
    let n = 8_000;
    let base = run(&SchedulerConfig::unbounded_baseline(), &spec, n).ipc();
    let mixb = run(&SchedulerConfig::mix_buff(16, 16, 8, 16, None), &spec, n).ipc();
    let lat = run(&SchedulerConfig::lat_fifo(16, 16, 8, 16), &spec, n).ipc();
    let fifo = run(&SchedulerConfig::issue_fifo(16, 16, 8, 16), &spec, n).ipc();
    let tol = 1.02; // 2% tolerance for simulation noise
    assert!(base * tol >= mixb, "baseline {base} vs MixBUFF {mixb}");
    assert!(mixb * tol >= lat, "MixBUFF {mixb} vs LatFIFO {lat}");
    assert!(lat * tol >= fifo, "LatFIFO {lat} vs IssueFIFO {fifo}");
    // And the gap between the extremes must be substantial: this kernel is
    // built to defeat FIFO dispatch.
    assert!(
        fifo < 0.85 * base,
        "IssueFIFO ({fifo}) should lose >15% to the baseline ({base}) here"
    );
    assert!(
        mixb > 0.80 * base,
        "MixBUFF ({mixb}) should stay within ~20% of the baseline ({base}) \
         even on this adversarial churn kernel"
    );
}

/// FIFO queues are fine for integer codes — the observation that motivates
/// the whole paper.
#[test]
fn issue_fifo_is_cheap_on_int_and_costly_on_fp() {
    // Long enough to get past cache/predictor warmup: at 6k instructions the
    // baseline itself is still cold (IPC ~0.7 of steady state) and the
    // FIFO-vs-baseline contrast this test asserts is not yet established.
    let n = 12_000;
    let int_spec = suite::by_name("gzip").unwrap();
    let fp_spec = suite::by_name("applu").unwrap();

    let int_loss = {
        let b = run(&SchedulerConfig::unbounded_baseline(), &int_spec, n).ipc();
        let f = run(&SchedulerConfig::issue_fifo(16, 16, 8, 16), &int_spec, n).ipc();
        (b - f) / b
    };
    let fp_loss = {
        let b = run(&SchedulerConfig::unbounded_baseline(), &fp_spec, n).ipc();
        let f = run(&SchedulerConfig::issue_fifo(16, 16, 8, 16), &fp_spec, n).ipc();
        (b - f) / b
    };
    assert!(
        int_loss < 0.05,
        "IssueFIFO should barely hurt integer code, lost {:.1}%",
        100.0 * int_loss
    );
    assert!(
        fp_loss > 0.08,
        "IssueFIFO should visibly hurt FP code, lost only {:.1}%",
        100.0 * fp_loss
    );
    assert!(fp_loss > 2.0 * int_loss, "the INT/FP contrast is the point");
}

/// Energy ordering: the CAM baseline burns much more issue-queue energy per
/// instruction than either distributed scheme; MB_distr sits between
/// IF_distr and the baseline (it pays for buffers/selection/chains).
#[test]
fn energy_ordering_matches_paper() {
    let spec = suite::by_name("applu").unwrap();
    let n = 10_000;
    let base = run(&SchedulerConfig::iq_64_64(), &spec, n);
    let ifd = run(&SchedulerConfig::if_distr(), &spec, n);
    let mbd = run(&SchedulerConfig::mb_distr(), &spec, n);
    let per_instr = |s: &SimStats| s.energy_pj() / s.committed as f64;
    assert!(
        per_instr(&base) > 2.0 * per_instr(&ifd),
        "baseline {:.1} pJ/instr should dwarf IF_distr {:.1}",
        per_instr(&base),
        per_instr(&ifd)
    );
    assert!(
        per_instr(&base) > 1.5 * per_instr(&mbd),
        "baseline {:.1} pJ/instr should dwarf MB_distr {:.1}",
        per_instr(&base),
        per_instr(&mbd)
    );
    assert!(
        per_instr(&mbd) > per_instr(&ifd),
        "MB_distr pays a little more than IF_distr for its flexibility"
    );
}

/// The baseline's wakeup must dominate its own energy (Figure 9), and the
/// distributed schemes must have no wakeup at all.
#[test]
fn wakeup_dominates_cam_and_vanishes_when_distributed() {
    use diq::power::Component;
    let spec = suite::by_name("equake").unwrap();
    let n = 10_000;
    let base = run(&SchedulerConfig::iq_64_64(), &spec, n);
    assert!(
        base.energy.fraction(Component::Wakeup) > 0.4,
        "wakeup is only {:.0}% of the CAM baseline",
        100.0 * base.energy.fraction(Component::Wakeup)
    );
    let mbd = run(&SchedulerConfig::mb_distr(), &spec, n);
    assert_eq!(mbd.energy.get(Component::Wakeup), 0.0);
    assert!(mbd.energy.get(Component::Chains) > 0.0);
    assert!(mbd.energy.get(Component::RegsReady) > 0.0);
}

/// Distributing the functional units collapses the mux/crossbar energy.
#[test]
fn distributed_mux_energy_is_negligible() {
    use diq::power::Component;
    let spec = suite::by_name("gzip").unwrap();
    let n = 10_000;
    let shared = run(&SchedulerConfig::issue_fifo(8, 8, 8, 16), &spec, n);
    let distr = run(&SchedulerConfig::if_distr(), &spec, n);
    let mux = |s: &SimStats| {
        s.energy.get(Component::MuxIntAlu)
            + s.energy.get(Component::MuxIntMul)
            + s.energy.get(Component::MuxFpAlu)
            + s.energy.get(Component::MuxFpMul)
    };
    assert!(
        mux(&shared) > 10.0 * mux(&distr),
        "shared-pool mux {:.1} pJ vs distributed {:.1} pJ",
        mux(&shared),
        mux(&distr)
    );
}

/// The distributed variants pay an IPC price for their private units —
/// but a bounded one.
#[test]
fn distribution_costs_bounded_ipc() {
    let spec = suite::by_name("facerec").unwrap();
    let n = 8_000;
    let pooled = run(&SchedulerConfig::mix_buff(8, 8, 8, 16, Some(8)), &spec, n).ipc();
    let distr = run(&SchedulerConfig::mb_distr(), &spec, n).ipc();
    assert!(distr <= pooled * 1.02, "distribution cannot help");
    assert!(
        distr > 0.85 * pooled,
        "distribution should cost well under 15% here, got {:.2} vs {:.2}",
        distr,
        pooled
    );
}
