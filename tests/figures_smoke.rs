//! Smoke tests of the figure harness at reduced instruction counts: every
//! artifact builds, has the right shape, and its aggregates are
//! arithmetically consistent.

use diq::sim::{figures, Harness};

fn harness() -> Harness {
    Harness::with_instructions(1_500)
}

#[test]
fn all_sixteen_artifacts_build() {
    let h = harness();
    let figs = figures::all(&h);
    assert_eq!(figs.len(), 16);
    for f in &figs {
        assert!(!f.rows.is_empty(), "{} is empty", f.id);
        // Every artifact renders and serializes.
        assert!(f.to_string().contains(&f.id));
        assert!(f.to_json().contains(&f.id));
    }
}

#[test]
fn loss_figures_cover_their_suites() {
    let h = harness();
    let f2 = figures::fig2(&h);
    assert_eq!(f2.rows.len(), 12 + 1, "12 SPECint benchmarks + HARMEAN");
    assert_eq!(f2.headers.len(), 7, "benchmark + six sweep configs");
    let f3 = figures::fig3(&h);
    assert_eq!(f3.rows.len(), 14 + 1, "14 SPECfp benchmarks + HARMEAN");
    assert!(f3.headers[1].starts_with("IssueFIFO_16x16_"));
    let f4 = figures::fig4(&h);
    assert!(f4.headers[1].starts_with("LatFIFO_"));
    let f6 = figures::fig6(&h);
    assert!(f6.headers[1].starts_with("MixBUFF_"));
}

#[test]
fn ipc_figures_parse_numerically() {
    let h = harness();
    let f8 = figures::fig8(&h);
    for bench in ["swim", "mgrid", "art", "HARMEAN"] {
        for col in ["IQ_64_64", "IF_distr", "MB_distr"] {
            let v = f8
                .value(bench, col)
                .unwrap_or_else(|| panic!("{bench}/{col} missing"));
            assert!(v > 0.0 && v < 8.0, "{bench}/{col} = {v}");
        }
    }
}

#[test]
fn breakdowns_sum_to_100_percent() {
    let h = harness();
    for (fig, label) in [
        (figures::fig9(&h), "fig9"),
        (figures::fig10(&h), "fig10"),
        (figures::fig11(&h), "fig11"),
    ] {
        for col in ["SPECINT", "SPECFP"] {
            let total: f64 = fig
                .rows
                .iter()
                .map(|r| fig.value(&r[0], col).unwrap())
                .sum();
            assert!(
                (total - 100.0).abs() < 1.5,
                "{label}/{col} sums to {total}%"
            );
        }
    }
}

#[test]
fn normalized_figures_have_unit_baselines() {
    let h = harness();
    for fig in [
        figures::fig12(&h),
        figures::fig13(&h),
        figures::fig14(&h),
        figures::fig15(&h),
    ] {
        for col in ["SPECINT", "SPECFP"] {
            let v = fig.value("IQ_64_64", col).unwrap();
            assert!((v - 1.0).abs() < 1e-9, "{}/{col} baseline = {v}", fig.id);
        }
    }
}

#[test]
fn headline_rows_reference_paper_numbers() {
    let h = harness();
    let f = figures::headline(&h);
    assert!(f.rows.len() >= 7);
    // Every row carries both a paper value and a measured value.
    for row in &f.rows {
        assert!(!row[1].is_empty() && !row[2].is_empty());
        assert!(row[2].contains('%'));
    }
}
