//! Property test for adaptive queue geometry: random controller knobs
//! (epoch lengths, thresholds, hysteresis) put resize decisions at random
//! cycles, random workloads put random occupancy under them, and wrong-path
//! plus load-hit speculation keep squashes, cancels and in-flight wakeups
//! landing *across* those resize points. Tag aliasing comes free: squash
//! rewinds the id counter and returns physical registers to the free-list
//! front, so the correct path reuses both namespaces immediately after a
//! geometry change.
//!
//! The shrink-safety invariant under test: a shrink must never strand a
//! listed waiter or a held replay entry. Power-gating is a *capacity*
//! limit, never a slot migration, so a stranded entry would show up here as
//! a deadlock (the simulator's loud 100k-cycle watchdog), a drain failure,
//! a checker violation, or a divergence from the scan twin — all asserted
//! on every case.

use diq::isa::ProcessorConfig;
use diq::pipeline::{Simulator, TraceSource};
use diq::sched::{AdaptiveConfig, SchedulerConfig};
use diq::workload::{BenchClass, BranchPattern, MemPattern, OpMix, TraceGenerator, WorkloadSpec};
use proptest::prelude::*;

/// A random always-valid workload shaped like `proptest_replay`'s:
/// load-heavy, pointer-chasing, branchy enough to squash mid-window — so
/// occupancy swings hard and the controller keeps crossing its thresholds.
fn arb_workload() -> impl Strategy<Value = WorkloadSpec> {
    (
        1usize..=24,  // live chains
        1usize..=5,   // min chain len
        0usize..=5,   // extra chain len
        0.05f64..0.4, // load frac
        0.0f64..0.12, // store frac
        0.0f64..0.25, // branch frac
        0.0f64..0.3,  // branch noise
        0.0f64..0.6,  // pointer-chase frac
        0.0f64..1.0,  // fp-ness of the mix
        14u32..22,    // log2 footprint (16 KB .. 2 MB)
        any::<u64>(), // seed
    )
        .prop_map(
            |(
                chains,
                len_lo,
                len_extra,
                loads,
                stores,
                branches,
                noise,
                chase,
                fpness,
                lgfoot,
                seed,
            )| {
                WorkloadSpec {
                    name: "resizeprop".into(),
                    class: if fpness > 0.5 {
                        BenchClass::Fp
                    } else {
                        BenchClass::Int
                    },
                    live_chains: chains,
                    chain_len: (len_lo, len_lo + len_extra),
                    chain_starts_with_load: 0.6,
                    chain_ends_with_store: 0.3,
                    cross_dep_prob: 0.1,
                    mix: OpMix {
                        int_alu: 1.0 - fpness,
                        int_mul: 0.02,
                        int_div: 0.002,
                        fp_add: fpness,
                        fp_mul: fpness * 0.8,
                        fp_div: fpness * 0.02,
                    },
                    mem: MemPattern {
                        load_frac: loads,
                        store_frac: stores,
                        footprint_bytes: 1 << lgfoot,
                        stride: 8,
                        random_frac: 0.5,
                        pointer_chase_frac: chase,
                    },
                    branch: BranchPattern {
                        branch_frac: branches,
                        taken_bias: 0.8,
                        noise,
                        sites: 64,
                        code_bytes: 4096,
                        call_frac: 0.03,
                    },
                    seed,
                }
            },
        )
        .prop_filter("fractions must leave room for arithmetic", |s| {
            s.validate().is_ok()
        })
}

/// Random controller knobs. Short epochs and shallow hysteresis put resize
/// decisions at many random points inside a 600-instruction run; the
/// threshold pair is drawn with `shrink < grow` so the controller always
/// has a dead band rather than a degenerate oscillator.
fn arb_adaptive() -> impl Strategy<Value = AdaptiveConfig> {
    (
        8u64..=128, // epoch cycles
        45u32..=90, // grow threshold (% occupancy)
        5u32..=40,  // shrink threshold
        1u32..=3,   // hysteresis epochs
        1usize..=4, // min powered banks
        0u64..=32,  // feedback guard
    )
        .prop_map(
            |(epoch, grow, shrink, hys, min_banks, guard)| AdaptiveConfig {
                enabled: true,
                epoch_cycles: epoch,
                grow_occupancy_pct: grow,
                shrink_occupancy_pct: shrink,
                hysteresis_epochs: hys,
                min_banks,
                feedback_guard: guard,
            },
        )
}

/// A random D-cache small enough that misses are the common case, so
/// speculative windows and replays straddle resize points.
fn arb_dl1_bytes() -> impl Strategy<Value = usize> {
    (8usize..13).prop_map(|lg| 1usize << lg) // 256 B .. 4 KB
}

/// Random queue geometry: small enough that the capacity limit binds.
fn arb_geometry() -> impl Strategy<Value = (usize, usize, usize)> {
    (2usize..=8, 1usize..=3).prop_map(|(banks, per_bank)| {
        let entries = banks * per_bank * 4;
        (entries, entries, banks)
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        .. ProptestConfig::default()
    })]

    /// Wrong-path and load-hit speculation both ON over random resize
    /// schedules: the event model must stay bit-identical to its scan twin,
    /// retire the exact budget, keep the dataflow checker clean, and drain
    /// to empty — a shrink that stranded a waiter or a held replay entry
    /// fails at least one of these on the spot.
    #[test]
    fn random_resize_points_strand_nothing(
        spec in arb_workload(),
        adaptive in arb_adaptive(),
        geometry in arb_geometry(),
        dl1 in arb_dl1_bytes(),
    ) {
        let (int_entries, fp_entries, banks) = geometry;
        let mut cfg = ProcessorConfig::hpca2004();
        cfg.load_hit_speculation = true;
        cfg.wrong_path = true;
        cfg.mem.dl1.size_bytes = dl1;
        let n = 600u64;
        let sched = SchedulerConfig::adaptive_cam(int_entries, fp_entries, banks, adaptive);

        let mut fast = Simulator::new(&cfg, &sched);
        fast.set_benchmark(&spec.name);
        let fast_stats = fast.run_workload(&mut TraceGenerator::new(&spec), n);

        let mut scan = Simulator::with_scheduler(&cfg, sched.build_scan(&cfg));
        scan.set_benchmark(&spec.name);
        let scan_stats = scan.run_workload(&mut TraceGenerator::new(&spec), n);

        prop_assert_eq!(
            &fast_stats,
            &scan_stats,
            "{}: SimStats diverge across resize points",
            sched.label()
        );
        prop_assert_eq!(fast_stats.checker_violations, 0, "{}", sched.label());
        prop_assert_eq!(fast_stats.committed, n, "{}", sched.label());
        prop_assert_eq!(
            fast.queue_occupancy(),
            (0, 0),
            "{}: queues failed to drain — a resize stranded an entry",
            sched.label()
        );
        prop_assert_eq!(
            scan.queue_occupancy(),
            (0, 0),
            "{}: scan queues failed to drain",
            sched.label()
        );
    }

    /// The stall-model path (no speculation) with replays off is the purest
    /// occupancy game: the controller shrinks into a busy queue and the
    /// capacity limit alone must produce identical stall breakdowns, issue
    /// order and energy in both models.
    #[test]
    fn resize_under_the_stall_model_is_bit_identical(
        spec in arb_workload(),
        adaptive in arb_adaptive(),
        geometry in arb_geometry(),
    ) {
        let (int_entries, fp_entries, banks) = geometry;
        let cfg = ProcessorConfig::hpca2004();
        let n = 600u64;
        let trace = spec.generate(n as usize);
        let sched = SchedulerConfig::adaptive_cam(int_entries, fp_entries, banks, adaptive);

        let mut fast = Simulator::new(&cfg, &sched);
        fast.set_benchmark(&spec.name);
        let fast_stats = fast.run_workload(&mut TraceSource::new(trace.clone()), n);

        let mut scan = Simulator::with_scheduler(&cfg, sched.build_scan(&cfg));
        scan.set_benchmark(&spec.name);
        let scan_stats = scan.run_workload(&mut TraceSource::new(trace), n);

        prop_assert_eq!(
            &fast_stats,
            &scan_stats,
            "{}: SimStats diverge under the stall model",
            sched.label()
        );
        prop_assert_eq!(fast_stats.checker_violations, 0, "{}", sched.label());
        prop_assert_eq!(fast_stats.committed, n, "{}", sched.label());
        prop_assert_eq!(fast.queue_occupancy(), (0, 0), "{}", sched.label());
    }
}
