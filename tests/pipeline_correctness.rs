//! End-to-end correctness: every scheme must run every kind of workload to
//! completion with a clean dataflow checker — plus direct LSQ edge-case
//! tests (forwarding granularity, unknown-store-address stalls, and
//! disambiguation state across a wrong-path truncation).

use diq::isa::{InstId, ProcessorConfig};
use diq::pipeline::{LoadAction, Lsq, Simulator, TraceSource};
use diq::sched::SchedulerConfig;
use diq::workload::{kernels, suite, TraceGenerator};

fn all_schemes() -> Vec<SchedulerConfig> {
    vec![
        SchedulerConfig::unbounded_baseline(),
        SchedulerConfig::iq_64_64(),
        SchedulerConfig::issue_fifo(8, 8, 8, 16),
        SchedulerConfig::lat_fifo(8, 8, 8, 16),
        SchedulerConfig::mix_buff(8, 8, 8, 16, Some(8)),
        SchedulerConfig::if_distr(),
        SchedulerConfig::mb_distr(),
    ]
}

#[test]
fn every_scheme_commits_exactly_the_trace_on_mixed_workloads() {
    let cfg = ProcessorConfig::hpca2004();
    let n = 3_000u64;
    for bench in ["swim", "gcc", "eon", "art"] {
        let spec = suite::by_name(bench).unwrap();
        let trace = spec.generate(n as usize);
        for sched in all_schemes() {
            let mut sim = Simulator::new(&cfg, &sched);
            sim.set_benchmark(bench);
            let stats = sim.run_workload(&mut TraceSource::new(trace.clone()), n);
            assert_eq!(stats.committed, n, "{bench} under {}", sched.label());
            assert_eq!(
                stats.checker_violations,
                0,
                "{bench} under {}: issued before ready",
                sched.label()
            );
            assert_eq!(
                stats.issued,
                stats.committed,
                "{bench} under {}: drained runs issue each instruction once",
                sched.label()
            );
        }
    }
}

#[test]
fn every_scheme_survives_stress_kernels() {
    let cfg = ProcessorConfig::hpca2004();
    let n = 2_000u64;
    for spec in [
        kernels::parallel_fp_chains(24, 8),
        kernels::serial_int_chain(),
        kernels::streaming(1 << 22),
        kernels::pointer_chase(1 << 24),
        kernels::branch_torture(0.3),
    ] {
        for sched in all_schemes() {
            let mut sim = Simulator::new(&cfg, &sched);
            sim.set_benchmark(&spec.name);
            let stats = sim.run_workload(&mut TraceSource::new(spec.generate(n as usize)), n);
            assert_eq!(stats.committed, n, "{} under {}", spec.name, sched.label());
            assert_eq!(stats.checker_violations, 0);
        }
    }
}

#[test]
fn identical_trace_identical_schemes_identical_results() {
    // Determinism end to end: same spec, same scheme => same cycle count.
    let cfg = ProcessorConfig::hpca2004();
    let spec = suite::by_name("fma3d").unwrap();
    let run = || {
        let mut sim = Simulator::new(&cfg, &SchedulerConfig::mb_distr());
        sim.run_workload(&mut TraceSource::new(spec.generate(2_000)), 2_000)
            .cycles
    };
    assert_eq!(run(), run());
}

/// Squash invariants under real wrong-path speculation. Tests run with
/// debug assertions on, which arms the pipeline's post-recovery invariant:
/// after **every** mispredict recovery, scheduler occupancy equals the
/// ROB's surviving dispatched-but-unissued entries (`recover()` in
/// diq-pipeline). On top of that, this asserts end-state invariants per
/// scheme: the full budget commits, the dataflow checker is clean (it
/// verifies issue-time readiness on both paths; architectural state is
/// only ever judged against the correct path, which is all that commits),
/// wrong-path work really happened and was all squashed, and the queues
/// drain to empty.
#[test]
fn speculation_squash_invariants_hold_for_every_scheme() {
    let mut cfg = ProcessorConfig::hpca2004();
    cfg.wrong_path = true;
    let n = 3_000u64;
    for bench in ["gcc", "eon", "art"] {
        let spec = suite::by_name(bench).unwrap();
        for sched in all_schemes() {
            let mut sim = Simulator::new(&cfg, &sched);
            sim.set_benchmark(bench);
            let mut program = TraceGenerator::new(&spec);
            let stats = sim.run_workload(&mut program, n);
            assert_eq!(stats.committed, n, "{bench} under {}", sched.label());
            assert_eq!(
                stats.checker_violations,
                0,
                "{bench} under {}: issued before ready",
                sched.label()
            );
            // Every wrong-path instruction fetched is eventually squashed;
            // none commits.
            assert_eq!(
                stats.wrong_path_fetched,
                stats.wrong_path_squashed,
                "{bench} under {}: wrong-path accounting must balance",
                sched.label()
            );
            assert_eq!(
                stats.issued,
                stats.committed + stats.wrong_path_issued,
                "{bench} under {}: issues split into committed + squashed",
                sched.label()
            );
            assert_eq!(
                sim.queue_occupancy(),
                (0, 0),
                "{bench} under {}: queues must drain",
                sched.label()
            );
            // One squash-depth sample per wrong-path recovery. Mispredicted
            // branches without a known target stall instead of speculating,
            // so recoveries are a subset of redirects.
            assert!(
                stats.squash_depth.count() <= stats.mispredict_redirects,
                "{bench} under {}: more recoveries than redirects",
                sched.label()
            );
            if stats.wrong_path_fetched > 0 {
                assert!(
                    stats.squash_depth.count() > 0,
                    "{bench} under {}: wrong-path work implies recoveries",
                    sched.label()
                );
            }
        }
    }
}

/// Load-hit speculation end-state invariants on every scheme: the budget
/// commits, the checker is clean (replayed consumers re-issued with real
/// data), replay work really happened on a miss-heavy profile, and every
/// replay is exactly one extra pass through the issue port.
#[test]
fn replay_invariants_hold_for_every_scheme() {
    let mut cfg = ProcessorConfig::hpca2004();
    cfg.load_hit_speculation = true;
    let n = 3_000u64;
    for bench in ["misschase", "mcf", "art"] {
        let spec = suite::by_name(bench).unwrap();
        let trace = spec.generate(n as usize);
        for sched in all_schemes() {
            let mut sim = Simulator::new(&cfg, &sched);
            sim.set_benchmark(bench);
            let stats = sim.run_workload(&mut TraceSource::new(trace.clone()), n);
            assert_eq!(stats.committed, n, "{bench} under {}", sched.label());
            assert_eq!(
                stats.checker_violations,
                0,
                "{bench} under {}: issued before (really) ready",
                sched.label()
            );
            assert_eq!(
                stats.issued,
                stats.committed + stats.replayed,
                "{bench} under {}: issues split into committed + replayed",
                sched.label()
            );
            assert_eq!(
                sim.queue_occupancy(),
                (0, 0),
                "{bench} under {}: queues must drain",
                sched.label()
            );
            // A speculated miss records one replay-depth sample; replays
            // can never outnumber window slots (issue width per miss).
            assert!(
                stats.replay_depth.count() <= stats.dl1.misses(),
                "{bench} under {}: more speculated misses than misses",
                sched.label()
            );
            if bench == "misschase" {
                assert!(
                    stats.replayed > 0,
                    "{bench} under {}: the miss-heavy profile must replay",
                    sched.label()
                );
                assert!(
                    stats.replay_cycles_lost >= stats.replayed,
                    "{bench} under {}: each replay loses at least one cycle",
                    sched.label()
                );
            }
        }
    }
}

// ---- LSQ edge cases ----------------------------------------------------
//
// `Lsq` is public API; these pin the disambiguation rules the simulator
// relies on, at the exact granularities where they flip.

/// Same-dword store→load forwarding vs. adjacent-dword non-aliasing: the
/// LSQ matches on 8-byte-aligned dwords, so a load one dword past a store
/// must access the cache while any address inside the store's dword
/// forwards.
#[test]
fn lsq_forwards_same_dword_and_ignores_adjacent_dwords() {
    let mut lsq = Lsq::new();
    lsq.push(InstId(1), true, 0x1000);
    lsq.push(InstId(2), false, 0x1007); // last byte of the store's dword
    lsq.push(InstId(3), false, 0x1008); // first byte of the next dword
    lsq.push(InstId(4), false, 0x0ff8); // dword just below
    lsq.store_addr_done(InstId(1));
    lsq.store_data_ready(InstId(1));
    for id in [2, 3, 4] {
        lsq.load_addr_done(InstId(id));
    }
    assert_eq!(lsq.load_action(InstId(2)), LoadAction::Forward);
    assert_eq!(lsq.load_action(InstId(3)), LoadAction::Access);
    assert_eq!(lsq.load_action(InstId(4)), LoadAction::Access);
    // The batched per-cycle walk agrees with the per-load reference.
    let mut actions = Vec::new();
    lsq.pending_load_actions_into(&mut actions);
    assert_eq!(
        actions,
        vec![
            (InstId(2), LoadAction::Forward),
            (InstId(3), LoadAction::Access),
            (InstId(4), LoadAction::Access),
        ]
    );
}

/// A load with its address in hand still waits while *any* older store's
/// address is unknown — even a store to what will turn out to be a
/// different dword — and proceeds the cycle the address resolves.
#[test]
fn lsq_load_stalls_on_unknown_older_store_address() {
    let mut lsq = Lsq::new();
    lsq.push(InstId(1), true, 0x2000); // address not yet generated
    lsq.push(InstId(2), true, 0x3000); // second unknown store
    lsq.push(InstId(3), false, 0x4000); // independent load
    lsq.load_addr_done(InstId(3));
    assert_eq!(lsq.load_action(InstId(3)), LoadAction::Wait);
    let mut actions = Vec::new();
    lsq.pending_load_actions_into(&mut actions);
    assert!(actions.is_empty(), "blocked loads must not surface");
    // First store resolves (different dword) — the second still blocks.
    lsq.store_addr_done(InstId(1));
    assert_eq!(lsq.load_action(InstId(3)), LoadAction::Wait);
    // Both resolved, no alias: the load may access.
    lsq.store_addr_done(InstId(2));
    assert_eq!(lsq.load_action(InstId(3)), LoadAction::Access);
    lsq.pending_load_actions_into(&mut actions);
    assert_eq!(actions, vec![(InstId(3), LoadAction::Access)]);
}

/// Disambiguation state after a wrong-path truncation: squashing a suffix
/// removes doomed stores from the disambiguation window (a load that
/// waited on a wrong-path store's unknown address runs free), removes
/// doomed pending loads, and keeps older state intact — including across
/// id reuse by the refetched correct path.
#[test]
fn lsq_disambiguation_survives_wrong_path_truncation() {
    let mut lsq = Lsq::new();
    lsq.push(InstId(1), true, 0x1000); // correct-path store
    lsq.push(InstId(2), false, 0x1004); // correct-path load, same dword
    lsq.push(InstId(3), true, 0x9000); // wrong-path store, addr unknown
    lsq.push(InstId(4), false, 0x9008); // wrong-path load
    lsq.store_addr_done(InstId(1));
    lsq.store_data_ready(InstId(1));
    lsq.load_addr_done(InstId(2));
    lsq.load_addr_done(InstId(4));
    // The wrong-path store's unknown address blocks nothing older than it,
    // but does block the younger wrong-path load.
    assert_eq!(lsq.load_action(InstId(2)), LoadAction::Forward);
    assert_eq!(lsq.load_action(InstId(4)), LoadAction::Wait);
    // Mispredict resolves: everything from id 3 is squashed.
    lsq.squash(InstId(3));
    assert_eq!(lsq.len(), 2);
    let mut actions = Vec::new();
    lsq.pending_load_actions_into(&mut actions);
    assert_eq!(
        actions,
        vec![(InstId(2), LoadAction::Forward)],
        "squashed entries must leave the pending set and the store mirror"
    );
    // The correct path reuses id 3 for a load to the store's dword: it
    // must see the surviving store, not any ghost of the squashed one.
    lsq.push(InstId(3), false, 0x1000);
    lsq.load_addr_done(InstId(3));
    assert_eq!(lsq.load_action(InstId(3)), LoadAction::Forward);
    lsq.pending_load_actions_into(&mut actions);
    assert_eq!(
        actions,
        vec![
            (InstId(2), LoadAction::Forward),
            (InstId(3), LoadAction::Forward),
        ]
    );
    // Commit order still holds after the truncation.
    lsq.load_started(InstId(2), true);
    lsq.load_started(InstId(3), true);
    lsq.pop(InstId(1));
    lsq.pop(InstId(2));
    lsq.pop(InstId(3));
    assert!(lsq.is_empty());
    assert_eq!(lsq.forwards, 2, "both surviving loads forwarded");
}

#[test]
fn serial_dependences_bound_every_scheme_equally() {
    // A fully serial FP-multiply chain must take >= 4 cycles per
    // instruction on every scheme — no scheme may break true dependences.
    use diq::isa::{ArchReg, Inst};
    let cfg = ProcessorConfig::hpca2004();
    let f = ArchReg::fp(4);
    let insts: Vec<Inst> = (0..300)
        .map(|i| Inst::fp_mul(f, f, f).at(0x40_0000 + (i % 8) * 4))
        .collect();
    for sched in all_schemes() {
        let mut sim = Simulator::new(&cfg, &sched);
        let stats = sim.run_workload(&mut TraceSource::new(insts.clone()), 300);
        assert!(
            stats.cycles >= 4 * 300,
            "{}: serial fp_mul chain finished in {} cycles (< 4/instr)",
            sched.label(),
            stats.cycles
        );
    }
}
