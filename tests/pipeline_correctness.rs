//! End-to-end correctness: every scheme must run every kind of workload to
//! completion with a clean dataflow checker.

use diq::isa::ProcessorConfig;
use diq::pipeline::Simulator;
use diq::sched::SchedulerConfig;
use diq::workload::{kernels, suite, TraceGenerator};

fn all_schemes() -> Vec<SchedulerConfig> {
    vec![
        SchedulerConfig::unbounded_baseline(),
        SchedulerConfig::iq_64_64(),
        SchedulerConfig::issue_fifo(8, 8, 8, 16),
        SchedulerConfig::lat_fifo(8, 8, 8, 16),
        SchedulerConfig::mix_buff(8, 8, 8, 16, Some(8)),
        SchedulerConfig::if_distr(),
        SchedulerConfig::mb_distr(),
    ]
}

#[test]
fn every_scheme_commits_exactly_the_trace_on_mixed_workloads() {
    let cfg = ProcessorConfig::hpca2004();
    let n = 3_000u64;
    for bench in ["swim", "gcc", "eon", "art"] {
        let spec = suite::by_name(bench).unwrap();
        let trace = spec.generate(n as usize);
        for sched in all_schemes() {
            let mut sim = Simulator::new(&cfg, &sched);
            sim.set_benchmark(bench);
            let stats = sim.run(trace.clone(), n);
            assert_eq!(stats.committed, n, "{bench} under {}", sched.label());
            assert_eq!(
                stats.checker_violations,
                0,
                "{bench} under {}: issued before ready",
                sched.label()
            );
            assert_eq!(
                stats.issued,
                stats.committed,
                "{bench} under {}: drained runs issue each instruction once",
                sched.label()
            );
        }
    }
}

#[test]
fn every_scheme_survives_stress_kernels() {
    let cfg = ProcessorConfig::hpca2004();
    let n = 2_000u64;
    for spec in [
        kernels::parallel_fp_chains(24, 8),
        kernels::serial_int_chain(),
        kernels::streaming(1 << 22),
        kernels::pointer_chase(1 << 24),
        kernels::branch_torture(0.3),
    ] {
        for sched in all_schemes() {
            let mut sim = Simulator::new(&cfg, &sched);
            sim.set_benchmark(&spec.name);
            let stats = sim.run(spec.generate(n as usize), n);
            assert_eq!(stats.committed, n, "{} under {}", spec.name, sched.label());
            assert_eq!(stats.checker_violations, 0);
        }
    }
}

#[test]
fn identical_trace_identical_schemes_identical_results() {
    // Determinism end to end: same spec, same scheme => same cycle count.
    let cfg = ProcessorConfig::hpca2004();
    let spec = suite::by_name("fma3d").unwrap();
    let run = || {
        let mut sim = Simulator::new(&cfg, &SchedulerConfig::mb_distr());
        sim.run(spec.generate(2_000), 2_000).cycles
    };
    assert_eq!(run(), run());
}

/// Squash invariants under real wrong-path speculation. Tests run with
/// debug assertions on, which arms the pipeline's post-recovery invariant:
/// after **every** mispredict recovery, scheduler occupancy equals the
/// ROB's surviving dispatched-but-unissued entries (`recover()` in
/// diq-pipeline). On top of that, this asserts end-state invariants per
/// scheme: the full budget commits, the dataflow checker is clean (it
/// verifies issue-time readiness on both paths; architectural state is
/// only ever judged against the correct path, which is all that commits),
/// wrong-path work really happened and was all squashed, and the queues
/// drain to empty.
#[test]
fn speculation_squash_invariants_hold_for_every_scheme() {
    let mut cfg = ProcessorConfig::hpca2004();
    cfg.wrong_path = true;
    let n = 3_000u64;
    for bench in ["gcc", "eon", "art"] {
        let spec = suite::by_name(bench).unwrap();
        for sched in all_schemes() {
            let mut sim = Simulator::new(&cfg, &sched);
            sim.set_benchmark(bench);
            let mut program = TraceGenerator::new(&spec);
            let stats = sim.run_program(&mut program, n);
            assert_eq!(stats.committed, n, "{bench} under {}", sched.label());
            assert_eq!(
                stats.checker_violations,
                0,
                "{bench} under {}: issued before ready",
                sched.label()
            );
            // Every wrong-path instruction fetched is eventually squashed;
            // none commits.
            assert_eq!(
                stats.wrong_path_fetched,
                stats.wrong_path_squashed,
                "{bench} under {}: wrong-path accounting must balance",
                sched.label()
            );
            assert_eq!(
                stats.issued,
                stats.committed + stats.wrong_path_issued,
                "{bench} under {}: issues split into committed + squashed",
                sched.label()
            );
            assert_eq!(
                sim.queue_occupancy(),
                (0, 0),
                "{bench} under {}: queues must drain",
                sched.label()
            );
            // One squash-depth sample per wrong-path recovery. Mispredicted
            // branches without a known target stall instead of speculating,
            // so recoveries are a subset of redirects.
            assert!(
                stats.squash_depth.count() <= stats.mispredict_redirects,
                "{bench} under {}: more recoveries than redirects",
                sched.label()
            );
            if stats.wrong_path_fetched > 0 {
                assert!(
                    stats.squash_depth.count() > 0,
                    "{bench} under {}: wrong-path work implies recoveries",
                    sched.label()
                );
            }
        }
    }
}

#[test]
fn serial_dependences_bound_every_scheme_equally() {
    // A fully serial FP-multiply chain must take >= 4 cycles per
    // instruction on every scheme — no scheme may break true dependences.
    use diq::isa::{ArchReg, Inst};
    let cfg = ProcessorConfig::hpca2004();
    let f = ArchReg::fp(4);
    let insts: Vec<Inst> = (0..300)
        .map(|i| Inst::fp_mul(f, f, f).at(0x40_0000 + (i % 8) * 4))
        .collect();
    for sched in all_schemes() {
        let mut sim = Simulator::new(&cfg, &sched);
        let stats = sim.run(insts.clone(), 300);
        assert!(
            stats.cycles >= 4 * 300,
            "{}: serial fp_mul chain finished in {} cycles (< 4/instr)",
            sched.label(),
            stats.cycles
        );
    }
}
