//! Property tests of the substrate data structures: caches, BTB, issue-time
//! estimation, selection keys, and the statistics helpers.

use diq::branch::Btb;
use diq::isa::{ArchReg, CacheGeometry, Cycle, Inst, LatencyConfig};
use diq::mem::Cache;
use diq::sched::select::{selection_key, LatencyCode};
use diq::sched::IssueTimeEstimator;
use diq::stats::{harmonic_mean, Histogram};
use proptest::prelude::*;

proptest! {
    /// A cache hit is guaranteed immediately after an access to the same
    /// line, regardless of the access history.
    #[test]
    fn cache_hits_after_fill(addrs in proptest::collection::vec(0u64..1 << 16, 1..200)) {
        let mut c = Cache::new(CacheGeometry {
            size_bytes: 1024,
            assoc: 2,
            line_bytes: 32,
            latency: 1,
            ports: 0,
        });
        for &a in &addrs {
            let _ = c.access(a);
            prop_assert!(c.probe(a), "line just filled must be resident");
            prop_assert!(c.access(a), "re-access must hit");
        }
        prop_assert_eq!(c.stats().accesses, 2 * addrs.len() as u64);
    }

    /// LRU never evicts the most recently used line.
    #[test]
    fn cache_mru_survives(next in 0u64..1 << 14, hot in 0u64..1 << 14) {
        let mut c = Cache::new(CacheGeometry {
            size_bytes: 512,
            assoc: 2,
            line_bytes: 32,
            latency: 1,
            ports: 0,
        });
        c.access(hot);
        c.access(next);
        c.access(hot); // hot is MRU now
        c.access(next ^ 0x1000); // may evict something — never `hot`'s line?
        // `hot` can only be evicted if the new access mapped to its set and
        // the set held {hot, other} with hot LRU — impossible: hot is MRU.
        prop_assert!(c.probe(hot));
    }

    /// The BTB returns exactly what was last stored per PC.
    #[test]
    fn btb_last_write_wins(ops in proptest::collection::vec((0u64..4096, 0u64..1 << 20), 1..128)) {
        let mut btb = Btb::new(64, 4);
        let mut last = std::collections::HashMap::new();
        for &(pc, target) in &ops {
            btb.update(pc, target);
            last.insert(pc, target);
            // Whatever the eviction pattern, a present entry must be the
            // most recent value for that pc.
            if let Some(t) = btb.lookup(pc) {
                prop_assert_eq!(t, *last.get(&pc).unwrap());
            }
        }
    }

    /// The issue-time estimator is monotone: an instruction never gets an
    /// estimate earlier than `now + 1`, and a consumer's estimate is never
    /// earlier than its producer's completion estimate.
    #[test]
    fn estimator_respects_dependences(lat_seed in 0u64..3, now in 0u64..1000u64) {
        let lat = LatencyConfig::default();
        let mut est = IssueTimeEstimator::new(lat, 2 + lat_seed);
        let producer = Inst::fp_mul(ArchReg::fp(1), ArchReg::fp(2), ArchReg::fp(3));
        let p_issue = est.estimate(&producer, now);
        prop_assert!(p_issue > now);
        let p_done: Cycle = est.operand_cycle(ArchReg::fp(1));
        prop_assert_eq!(p_done, p_issue + lat.fp_mul);
        let consumer = Inst::fp_add(ArchReg::fp(4), ArchReg::fp(1), ArchReg::fp(1));
        let c_issue = est.estimate(&consumer, now);
        prop_assert!(c_issue >= p_done, "consumer {c_issue} before producer done {p_done}");
    }

    /// Selection keys: the 2-bit class always dominates age, and within a
    /// class, age orders.
    #[test]
    fn selection_key_ordering(age_a in 0u64..1 << 40, age_b in 0u64..1 << 40) {
        let fresh = selection_key(LatencyCode::FinishingNow, age_a.max(age_b));
        let delayed = selection_key(LatencyCode::Finished, age_a.min(age_b));
        prop_assert!(fresh < delayed, "freshly-ready must beat delayed regardless of age");
        if age_a != age_b {
            let older = selection_key(LatencyCode::Finished, age_a.min(age_b));
            let younger = selection_key(LatencyCode::Finished, age_a.max(age_b));
            prop_assert!(older < younger);
        }
    }

    /// Histogram totals are conserved and the mean is exact.
    #[test]
    fn histogram_conserves(samples in proptest::collection::vec(0u64..500, 1..100)) {
        let mut h = Histogram::new(64);
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        let expect = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        prop_assert!((h.mean() - expect).abs() < 1e-9);
        prop_assert_eq!(h.max(), *samples.iter().max().unwrap());
    }

    /// The harmonic mean is bounded by min and max of its inputs.
    #[test]
    fn harmonic_mean_bounds(xs in proptest::collection::vec(0.01f64..100.0, 1..30)) {
        let hm = harmonic_mean(xs.iter().copied()).unwrap();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(hm >= lo - 1e-9 && hm <= hi + 1e-9);
    }
}
