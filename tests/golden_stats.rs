//! Golden equivalence test for the event-driven wakeup refactor.
//!
//! The schedulers in `diq-core` simulate wakeup/select event-driven
//! (per-tag consumer lists, ready lists, per-chain selection) while the
//! frozen scan implementations in `diq_core::reference` model the same
//! hardware by re-scanning full entry vectors every cycle. These tests run
//! the *same* trace through both on the identical pipeline substrate and
//! assert the complete `SimStats` — cycles, IPC numerators, stall
//! breakdowns, occupancy histograms, and every `f64` of the energy meters —
//! are **bit-for-bit identical**. Physical energy accounting is decoupled
//! from simulation work, not changed by it.

use diq::isa::ProcessorConfig;
use diq::pipeline::{SimStats, Simulator, TraceSource};
use diq::sched::{AdaptiveConfig, SchedulerConfig};
use diq::workload::{suite, TraceGenerator};

/// Runs the event-driven scheduler and the frozen scan reference on two
/// threads (the two models are independent over the same immutable trace —
/// the parallel harness the ROADMAP asked for) and returns both results.
fn run_both(sched: &SchedulerConfig, bench: &str, n: u64) -> (SimStats, SimStats) {
    let cfg = ProcessorConfig::hpca2004();
    let spec = suite::by_name(bench).unwrap();
    let trace = spec.generate(n as usize);

    std::thread::scope(|s| {
        let fast = s.spawn(|| {
            let mut sim = Simulator::new(&cfg, sched);
            sim.set_benchmark(bench);
            sim.run_workload(&mut TraceSource::new(trace.iter().copied()), n)
        });
        let scan = s.spawn(|| {
            let mut sim = Simulator::with_scheduler(&cfg, sched.build_scan(&cfg));
            sim.set_benchmark(bench);
            sim.run_workload(&mut TraceSource::new(trace.iter().copied()), n)
        });
        (fast.join().unwrap(), scan.join().unwrap())
    })
}

/// Same two-thread comparison with wrong-path speculation enabled: both
/// sides run the PC-addressable program as a speculative [`Workload`], so
/// fetch follows predicted paths and every scheme's `squash` is exercised.
///
/// [`Workload`]: diq::pipeline::Workload
fn run_both_speculating(sched: &SchedulerConfig, bench: &str, n: u64) -> (SimStats, SimStats) {
    let mut cfg = ProcessorConfig::hpca2004();
    cfg.wrong_path = true;
    let spec = suite::by_name(bench).unwrap();

    std::thread::scope(|s| {
        let fast = s.spawn(|| {
            let mut sim = Simulator::new(&cfg, sched);
            sim.set_benchmark(bench);
            sim.run_workload(&mut TraceGenerator::new(&spec), n)
        });
        let scan = s.spawn(|| {
            let mut sim = Simulator::with_scheduler(&cfg, sched.build_scan(&cfg));
            sim.set_benchmark(bench);
            sim.run_workload(&mut TraceGenerator::new(&spec), n)
        });
        (fast.join().unwrap(), scan.join().unwrap())
    })
}

fn assert_identical(sched: &SchedulerConfig, bench: &str, n: u64) {
    let (fast, scan) = run_both(sched, bench, n);
    // Spot-check the load-bearing fields with readable failures before the
    // full struct equality (which covers everything, floats included).
    assert_eq!(
        fast.cycles,
        scan.cycles,
        "{}/{bench}: cycles",
        sched.label()
    );
    assert_eq!(
        fast.stall_reasons,
        scan.stall_reasons,
        "{}/{bench}: stall breakdown",
        sched.label()
    );
    for (c, pj) in fast.energy.breakdown() {
        assert!(
            scan.energy.get(c) == pj,
            "{}/{bench}: {c} energy {} (event) vs {} (scan)",
            sched.label(),
            pj,
            scan.energy.get(c)
        );
    }
    assert_eq!(
        fast,
        scan,
        "{}/{bench}: full SimStats must be bit-identical",
        sched.label()
    );
    assert_eq!(fast.checker_violations, 0, "{}/{bench}", sched.label());
}

/// Every registered scheme over the `ci_smoke` grid (gzip + swim at 2k
/// instructions) — the acceptance grid for the refactor.
#[test]
fn every_registered_scheme_is_bit_identical_on_the_ci_smoke_grid() {
    for sched in SchedulerConfig::known() {
        for bench in ["gzip", "swim"] {
            assert_identical(&sched, bench, 2_000);
        }
    }
}

/// Longer horizon on the headline schemes: mispredict steering-table
/// clears, chain reuse, FP store data on the integer side, cache misses —
/// the slow paths all get exercised at 20k instructions.
#[test]
fn headline_schemes_stay_identical_on_longer_mixed_runs() {
    for sched in [
        SchedulerConfig::iq_64_64(),
        SchedulerConfig::if_distr(),
        SchedulerConfig::mb_distr(),
        SchedulerConfig::lat_fifo(16, 16, 8, 16),
    ] {
        for bench in ["mcf", "art", "equake"] {
            assert_identical(&sched, bench, 20_000);
        }
    }
}

/// Tiny geometries hit the stall paths (full queues, exhausted chains)
/// constantly; they must stall identically too.
#[test]
fn tiny_geometries_stall_identically() {
    for sched in [
        SchedulerConfig::cam(8, 8, 2),
        SchedulerConfig::issue_fifo(2, 2, 2, 2),
        SchedulerConfig::lat_fifo(2, 2, 2, 2),
        SchedulerConfig::mix_buff(2, 2, 2, 4, Some(2)),
    ] {
        for bench in ["gzip", "swim"] {
            assert_identical(&sched, bench, 3_000);
        }
    }
}

fn assert_identical_speculating(sched: &SchedulerConfig, bench: &str, n: u64) {
    let (fast, scan) = run_both_speculating(sched, bench, n);
    assert_eq!(
        fast.cycles,
        scan.cycles,
        "{}/{bench} (wrong-path): cycles",
        sched.label()
    );
    for (c, pj) in fast.energy.breakdown() {
        assert!(
            scan.energy.get(c) == pj,
            "{}/{bench} (wrong-path): {c} energy {} (event) vs {} (scan)",
            sched.label(),
            pj,
            scan.energy.get(c)
        );
    }
    assert_eq!(
        fast,
        scan,
        "{}/{bench} (wrong-path): full SimStats must be bit-identical",
        sched.label()
    );
    assert_eq!(fast.checker_violations, 0, "{}/{bench}", sched.label());
    assert_eq!(
        fast.committed,
        n,
        "{}/{bench}: commits the full budget",
        sched.label()
    );
}

/// The acceptance grid with speculation **enabled**: every registered
/// scheme's event-driven `squash` must be observationally identical to the
/// frozen scan reference's — cycles, stall breakdowns, wrong-path counters,
/// squash-depth histograms, and every energy `f64`, bit for bit.
#[test]
fn every_registered_scheme_is_bit_identical_with_speculation_on() {
    for sched in SchedulerConfig::known() {
        for bench in ["gzip", "swim"] {
            assert_identical_speculating(&sched, bench, 2_000);
        }
    }
}

/// Branchy SPECint at a longer horizon drives deep and frequent squashes
/// through the headline schemes.
#[test]
fn headline_schemes_stay_identical_speculating_on_branchy_runs() {
    for sched in [
        SchedulerConfig::iq_64_64(),
        SchedulerConfig::if_distr(),
        SchedulerConfig::mb_distr(),
        SchedulerConfig::lat_fifo(16, 16, 8, 16),
    ] {
        for bench in ["gcc", "mcf"] {
            assert_identical_speculating(&sched, bench, 10_000);
        }
    }
}

/// Tiny geometries + speculation: wrong-path work collides with full-queue
/// stalls, and squash must leave the stall machinery consistent.
#[test]
fn tiny_geometries_squash_identically() {
    for sched in [
        SchedulerConfig::cam(8, 8, 2),
        SchedulerConfig::issue_fifo(2, 2, 2, 2),
        SchedulerConfig::lat_fifo(2, 2, 2, 2),
        SchedulerConfig::mix_buff(2, 2, 2, 4, Some(2)),
    ] {
        for bench in ["gzip", "gcc"] {
            assert_identical_speculating(&sched, bench, 3_000);
        }
    }
}

/// Scan-vs-event comparison with load-hit speculation enabled (and
/// optionally wrong-path speculation on top). `dl1_bytes` shrinks the L1
/// data cache so misses — and therefore speculative wakeups, cancels and
/// replays — are frequent even on small instruction budgets.
fn run_both_replaying(
    sched: &SchedulerConfig,
    bench: &str,
    n: u64,
    dl1_bytes: Option<usize>,
    wrong_path: bool,
) -> (SimStats, SimStats) {
    let mut cfg = ProcessorConfig::hpca2004();
    cfg.load_hit_speculation = true;
    cfg.wrong_path = wrong_path;
    if let Some(b) = dl1_bytes {
        cfg.mem.dl1.size_bytes = b;
    }
    let spec = suite::by_name(bench).unwrap();

    // The scheduler is built *inside* each thread (trait objects need not
    // be Send); the configs are shared by reference.
    let run = |scan: bool| -> SimStats {
        let scheduler = if scan {
            sched.build_scan(&cfg)
        } else {
            sched.build(&cfg)
        };
        let mut sim = Simulator::with_scheduler(&cfg, scheduler);
        sim.set_benchmark(bench);
        if wrong_path {
            sim.run_workload(&mut TraceGenerator::new(&spec), n)
        } else {
            sim.run_workload(&mut TraceSource::new(spec.generate(n as usize)), n)
        }
    };
    std::thread::scope(|s| {
        let fast = s.spawn(|| run(false));
        let scan = s.spawn(|| run(true));
        (fast.join().unwrap(), scan.join().unwrap())
    })
}

fn assert_identical_replaying(
    sched: &SchedulerConfig,
    bench: &str,
    n: u64,
    dl1_bytes: Option<usize>,
    wrong_path: bool,
) -> SimStats {
    let (fast, scan) = run_both_replaying(sched, bench, n, dl1_bytes, wrong_path);
    assert_eq!(
        fast.cycles,
        scan.cycles,
        "{}/{bench} (load-hit spec, wp={wrong_path}): cycles",
        sched.label()
    );
    for (c, pj) in fast.energy.breakdown() {
        assert!(
            scan.energy.get(c) == pj,
            "{}/{bench} (load-hit spec, wp={wrong_path}): {c} energy {} (event) vs {} (scan)",
            sched.label(),
            pj,
            scan.energy.get(c)
        );
    }
    assert_eq!(
        fast,
        scan,
        "{}/{bench} (load-hit spec, wp={wrong_path}): full SimStats must be bit-identical",
        sched.label()
    );
    assert_eq!(fast.checker_violations, 0, "{}/{bench}", sched.label());
    assert_eq!(
        fast.committed,
        n,
        "{}/{bench}: commits the full budget",
        sched.label()
    );
    fast
}

/// The acceptance grid with **load-hit speculation enabled**: every
/// registered scheme must produce bit-identical `SimStats` under the
/// event-driven hold/cancel/replay path and the frozen scan reference's.
/// The shrunken D-cache makes every workload miss-heavy, so the window is
/// exercised thousands of times.
#[test]
fn every_registered_scheme_is_bit_identical_with_load_hit_speculation_on() {
    for sched in SchedulerConfig::known() {
        for bench in ["gzip", "swim"] {
            assert_identical_replaying(&sched, bench, 2_000, Some(1024), false);
        }
    }
}

/// Load-hit speculation must actually speculate and replay: on a
/// miss-heavy run the protocol records misses, replays consumers, loses
/// cycles, and still retires the exact instruction budget with a clean
/// dataflow checker (every replayed instruction re-issued with real data).
#[test]
fn load_hit_speculation_produces_replays_and_stays_sound() {
    for sched in [
        SchedulerConfig::iq_64_64(),
        SchedulerConfig::if_distr(),
        SchedulerConfig::mb_distr(),
        SchedulerConfig::lat_fifo(16, 16, 8, 16),
    ] {
        let stats = assert_identical_replaying(&sched, "mcf", 5_000, Some(1024), false);
        assert!(
            stats.replay_depth.count() > 0,
            "{}: no misses were speculated",
            sched.label()
        );
        assert!(stats.replayed > 0, "{}: no replays", sched.label());
        assert!(
            stats.replay_cycles_lost > 0,
            "{}: replays lost no cycles",
            sched.label()
        );
        // Every replay is one extra pass through the issue port.
        assert_eq!(
            stats.issued,
            stats.committed + stats.replayed,
            "{}: issued != committed + replayed",
            sched.label()
        );
    }
}

/// Load-hit speculation combined with wrong-path speculation: replayed
/// instructions get squashed, squashed loads abandon their windows, and
/// both models must still agree bit for bit.
#[test]
fn load_hit_and_wrong_path_speculation_combine_bit_identically() {
    for sched in SchedulerConfig::known() {
        for bench in ["gzip", "swim"] {
            assert_identical_replaying(&sched, bench, 2_000, Some(1024), true);
        }
    }
    // Branchy + miss-heavy at a longer horizon on the headline schemes.
    for sched in [
        SchedulerConfig::iq_64_64(),
        SchedulerConfig::if_distr(),
        SchedulerConfig::mb_distr(),
    ] {
        let stats = assert_identical_replaying(&sched, "mcf", 5_000, Some(1024), true);
        assert!(stats.replayed > 0, "{}: no replays", sched.label());
        assert!(
            stats.wrong_path_squashed > 0,
            "{}: no squashes",
            sched.label()
        );
    }
}

/// Tiny queue geometries under load-hit speculation: held entries occupy
/// capacity, so the stall machinery collides with the replay window
/// constantly — and must do so identically in both models.
#[test]
fn tiny_geometries_replay_identically() {
    for sched in [
        SchedulerConfig::cam(8, 8, 2),
        SchedulerConfig::issue_fifo(2, 2, 2, 2),
        SchedulerConfig::lat_fifo(2, 2, 2, 2),
        SchedulerConfig::mix_buff(2, 2, 2, 4, Some(2)),
    ] {
        for bench in ["gzip", "mcf"] {
            assert_identical_replaying(&sched, bench, 3_000, Some(512), false);
        }
    }
}

/// The off position of the new knob is the default, and the stock Table 1
/// machine reproduces today's golden numbers byte for byte — pinned by
/// every stall-model and wrong-path test above, all of which run with
/// `load_hit_speculation == false`.
#[test]
fn load_hit_speculation_off_is_the_default_and_exact() {
    let cfg = ProcessorConfig::hpca2004();
    assert!(!cfg.load_hit_speculation, "oracle latency is the default");
    // An explicit `false` is the identical machine — not merely equivalent
    // statistics, the same configuration value the golden runs above used.
    let mut explicit = ProcessorConfig::hpca2004();
    explicit.load_hit_speculation = false;
    assert_eq!(explicit, cfg);
    // And with the knob off, a run must record zero speculation activity.
    let sched = SchedulerConfig::mb_distr();
    let spec = suite::by_name("mcf").unwrap();
    let mut sim = Simulator::new(&cfg, &sched);
    sim.set_benchmark("mcf");
    let stats = sim.run_workload(&mut TraceSource::new(spec.generate(3_000)), 3_000);
    assert_eq!(stats.replayed, 0);
    assert_eq!(stats.replay_cycles_lost, 0);
    assert_eq!(stats.replay_depth.count(), 0);
    assert_eq!(stats.issued, stats.committed);
}

/// A branchy workload must actually exercise the wrong path (nonzero
/// speculative work), and the legacy stall model must stay exactly what it
/// was — the off position of the knob reproduces the old golden numbers,
/// which the stall-model tests above pin.
#[test]
fn speculation_produces_wrong_path_work_and_the_off_switch_is_exact() {
    let sched = SchedulerConfig::mb_distr();
    let (fast, _) = run_both_speculating(&sched, "gcc", 5_000);
    assert!(fast.wrong_path_fetched > 0, "no wrong-path fetches on gcc");
    assert!(fast.wrong_path_dispatched > 0);
    assert!(fast.wrong_path_issued > 0, "no wrong-path issues on gcc");
    assert!(fast.wrong_path_squashed > 0);
    assert!(fast.squash_depth.count() > 0, "squash depths recorded");

    // Off position: a speculative workload with the knob off must equal
    // the legacy trace-driven run bit for bit (same machine, same stream —
    // neither the budget plumbing nor the branch-terminated micro-batch
    // fills may perturb the stall model by even one cycle).
    let cfg = ProcessorConfig::hpca2004();
    assert!(!cfg.wrong_path, "stall model is the default");
    let spec = suite::by_name("gcc").unwrap();
    let mut legacy = Simulator::new(&cfg, &sched);
    legacy.set_benchmark("gcc");
    let legacy_stats = legacy.run_workload(&mut TraceSource::new(spec.generate(5_000)), 5_000);
    assert_eq!(legacy_stats.wrong_path_fetched, 0);
    assert_eq!(legacy_stats.wrong_path_squashed, 0);
    assert_eq!(legacy_stats.squash_depth.count(), 0);

    let mut off = Simulator::new(&cfg, &sched);
    off.set_benchmark("gcc");
    let off_stats = off.run_workload(&mut TraceGenerator::new(&spec), 5_000);
    assert_eq!(
        off_stats, legacy_stats,
        "a generator workload with wrong_path off must be bit-identical to a trace workload"
    );
}

/// With the controller **disabled**, the adaptive CAM must reproduce its
/// static parent's numbers byte for byte — same cycles, same stall
/// breakdown, same energy `f64`s, zero adaptive counters — across every
/// machine mode (stall model, wrong path, load-hit speculation, both).
/// Only the scheme label may differ.
#[test]
fn disabled_controller_reproduces_the_static_parent_byte_for_byte() {
    let parent = SchedulerConfig::iq_64_64();
    let off = SchedulerConfig::adaptive_cam(64, 64, 8, AdaptiveConfig::disabled());
    for (wrong_path, load_hit_speculation) in
        [(false, false), (true, false), (false, true), (true, true)]
    {
        let mut cfg = ProcessorConfig::hpca2004();
        cfg.wrong_path = wrong_path;
        cfg.load_hit_speculation = load_hit_speculation;
        cfg.mem.dl1.size_bytes = 1024; // miss-heavy: exercise cancel/replay
        let spec = suite::by_name("mcf").unwrap();
        let run = |sched: &SchedulerConfig| -> SimStats {
            let mut sim = Simulator::new(&cfg, sched);
            sim.set_benchmark("mcf");
            if wrong_path {
                sim.run_workload(&mut TraceGenerator::new(&spec), 3_000)
            } else {
                sim.run_workload(&mut TraceSource::new(spec.generate(3_000)), 3_000)
            }
        };
        let want = run(&parent);
        let mut got = run(&off);
        assert_eq!(got.resize_events, 0, "a disabled controller never resizes");
        assert_eq!(
            got.gated_bank_cycles, 0,
            "a disabled controller never gates"
        );
        assert_eq!(got.scheme, "IQ_64_64_adapt_off");
        got.scheme.clone_from(&want.scheme);
        assert_eq!(
            got, want,
            "wp={wrong_path} lhs={load_hit_speculation}: IQ_64_64_adapt_off \
             must equal IQ_64_64 byte for byte"
        );
    }
}

/// An **enabled** controller on a long miss-heavy run actually resizes and
/// gates banks, reports it through `SimStats`, charges bank-idle retention
/// energy — and stays bit-identical to its scan twin while doing so, with
/// wrong-path and load-hit speculation both on.
#[test]
fn enabled_controller_resizes_gates_and_stays_bit_identical() {
    let aggressive = AdaptiveConfig {
        epoch_cycles: 64,
        hysteresis_epochs: 1,
        ..AdaptiveConfig::default()
    };
    let sched = SchedulerConfig::adaptive_cam(64, 64, 8, aggressive);
    let stats = assert_identical_replaying(&sched, "mcf", 5_000, Some(1024), true);
    assert!(stats.resize_events > 0, "controller never resized");
    assert!(stats.gated_bank_cycles > 0, "controller never gated a bank");
    let idle = stats
        .energy
        .breakdown()
        .find(|(c, _)| c.paper_label() == "bank_idle");
    let (_, idle_pj) = idle.expect("an enabled controller meters bank-idle energy");
    assert!(idle_pj > 0.0, "bank-idle retention energy must accrue");
}

/// `run_workload` is the one entry point (the PR 6 shims are gone): a
/// re-run through a fresh simulator must be bit-identical on both the
/// trace-source and PC-addressable-program paths.
#[test]
fn run_workload_is_deterministic_on_both_workload_shapes() {
    let sched = SchedulerConfig::if_distr();
    let spec = suite::by_name("gzip").unwrap();

    // Trace path.
    let cfg = ProcessorConfig::hpca2004();
    let trace = spec.generate(3_000);
    let mut a = Simulator::new(&cfg, &sched);
    a.set_benchmark("gzip");
    let first = a.run_workload(&mut TraceSource::new(trace.clone()), 3_000);
    let mut b = Simulator::new(&cfg, &sched);
    b.set_benchmark("gzip");
    let second = b.run_workload(&mut TraceSource::new(trace), 3_000);
    assert_eq!(first, second, "trace path diverged");

    // Program path, with speculation on so the checkpoint machinery runs.
    let mut cfg = ProcessorConfig::hpca2004();
    cfg.wrong_path = true;
    let mut a = Simulator::new(&cfg, &sched);
    a.set_benchmark("gzip");
    let first = a.run_workload(&mut TraceGenerator::new(&spec), 3_000);
    let mut b = Simulator::new(&cfg, &sched);
    b.set_benchmark("gzip");
    let second = b.run_workload(&mut TraceGenerator::new(&spec), 3_000);
    assert_eq!(first, second, "program path diverged");
}
