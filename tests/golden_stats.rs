//! Golden equivalence test for the event-driven wakeup refactor.
//!
//! The schedulers in `diq-core` simulate wakeup/select event-driven
//! (per-tag consumer lists, ready lists, per-chain selection) while the
//! frozen scan implementations in `diq_core::reference` model the same
//! hardware by re-scanning full entry vectors every cycle. These tests run
//! the *same* trace through both on the identical pipeline substrate and
//! assert the complete `SimStats` — cycles, IPC numerators, stall
//! breakdowns, occupancy histograms, and every `f64` of the energy meters —
//! are **bit-for-bit identical**. Physical energy accounting is decoupled
//! from simulation work, not changed by it.

use diq::isa::ProcessorConfig;
use diq::pipeline::{SimStats, Simulator};
use diq::sched::SchedulerConfig;
use diq::workload::suite;

fn run_both(sched: &SchedulerConfig, bench: &str, n: u64) -> (SimStats, SimStats) {
    let cfg = ProcessorConfig::hpca2004();
    let spec = suite::by_name(bench).unwrap();
    let trace = spec.generate(n as usize);

    let mut fast = Simulator::new(&cfg, sched);
    fast.set_benchmark(bench);
    let fast_stats = fast.run(trace.clone(), n);

    let mut scan = Simulator::with_scheduler(&cfg, sched.build_scan(&cfg));
    scan.set_benchmark(bench);
    let scan_stats = scan.run(trace, n);

    (fast_stats, scan_stats)
}

fn assert_identical(sched: &SchedulerConfig, bench: &str, n: u64) {
    let (fast, scan) = run_both(sched, bench, n);
    // Spot-check the load-bearing fields with readable failures before the
    // full struct equality (which covers everything, floats included).
    assert_eq!(
        fast.cycles,
        scan.cycles,
        "{}/{bench}: cycles",
        sched.label()
    );
    assert_eq!(
        fast.stall_reasons,
        scan.stall_reasons,
        "{}/{bench}: stall breakdown",
        sched.label()
    );
    for (c, pj) in fast.energy.breakdown() {
        assert!(
            scan.energy.get(c) == pj,
            "{}/{bench}: {c} energy {} (event) vs {} (scan)",
            sched.label(),
            pj,
            scan.energy.get(c)
        );
    }
    assert_eq!(
        fast,
        scan,
        "{}/{bench}: full SimStats must be bit-identical",
        sched.label()
    );
    assert_eq!(fast.checker_violations, 0, "{}/{bench}", sched.label());
}

/// Every registered scheme over the `ci_smoke` grid (gzip + swim at 2k
/// instructions) — the acceptance grid for the refactor.
#[test]
fn every_registered_scheme_is_bit_identical_on_the_ci_smoke_grid() {
    for sched in SchedulerConfig::known() {
        for bench in ["gzip", "swim"] {
            assert_identical(&sched, bench, 2_000);
        }
    }
}

/// Longer horizon on the headline schemes: mispredict steering-table
/// clears, chain reuse, FP store data on the integer side, cache misses —
/// the slow paths all get exercised at 20k instructions.
#[test]
fn headline_schemes_stay_identical_on_longer_mixed_runs() {
    for sched in [
        SchedulerConfig::iq_64_64(),
        SchedulerConfig::if_distr(),
        SchedulerConfig::mb_distr(),
        SchedulerConfig::lat_fifo(16, 16, 8, 16),
    ] {
        for bench in ["mcf", "art", "equake"] {
            assert_identical(&sched, bench, 20_000);
        }
    }
}

/// Tiny geometries hit the stall paths (full queues, exhausted chains)
/// constantly; they must stall identically too.
#[test]
fn tiny_geometries_stall_identically() {
    for sched in [
        SchedulerConfig::cam(8, 8, 2),
        SchedulerConfig::issue_fifo(2, 2, 2, 2),
        SchedulerConfig::lat_fifo(2, 2, 2, 2),
        SchedulerConfig::mix_buff(2, 2, 2, 4, Some(2)),
    ] {
        for bench in ["gzip", "swim"] {
            assert_identical(&sched, bench, 3_000);
        }
    }
}
