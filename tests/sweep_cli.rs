//! End-to-end tests of the experiment subcommands (`diq sweep` / `compare` /
//! `export`) against the compiled binary, plus validation of every spec
//! shipped under `experiments/`.

use diq::exp::ExperimentSpec;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn repo_file(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("diq-sweep-cli-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn diq(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_diq"))
        .args(args)
        .output()
        .expect("run diq")
}

fn stdout_of(out: &Output) -> String {
    assert!(
        out.status.success(),
        "diq failed: {:?}\nstderr: {}",
        out,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout.clone()).unwrap()
}

#[test]
fn shipped_experiment_specs_parse_and_expand() {
    // trace_smoke.json replays a recorded trace that CI (and `just
    // trace-smoke`) records before sweeping; expansion hashes the file's
    // content, so mirror that setup here. The path is gitignored.
    let trace = repo_file("traces/gzip-50k.diqt");
    if !trace.exists() {
        std::fs::create_dir_all(trace.parent().unwrap()).unwrap();
        let spec = diq::workload::suite::by_name("gzip").unwrap();
        diq::workload::trace::record(
            &trace,
            &spec.name,
            spec.seed,
            "test setup",
            diq::workload::TraceGenerator::new(&spec),
            50_000,
        )
        .unwrap();
    }
    let dir = repo_file("experiments");
    let mut seen = 0;
    for entry in fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "json") {
            continue;
        }
        let json = fs::read_to_string(&path).unwrap();
        let spec =
            ExperimentSpec::from_json(&json).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let points = spec
            .expand()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(!points.is_empty(), "{} expands to nothing", path.display());
        seen += 1;
    }
    assert!(seen >= 4, "expected the shipped specs, found {seen}");
}

#[test]
fn paper_matrix_covers_the_full_evaluation() {
    let json = fs::read_to_string(repo_file("experiments/paper_matrix.json")).unwrap();
    let points = ExperimentSpec::from_json(&json).unwrap().expand().unwrap();
    // 8 schemes x 26 benchmarks x 1 count x 1 machine.
    assert_eq!(points.len(), 208);
    assert!(points.iter().all(|p| p.instructions == 100_000));
}

/// The parsed shape of `--summary-json` output (what CI asserts on).
fn summary_fields(json: &str) -> (usize, usize, usize, f64) {
    let s = diq::exp::SweepSummary::from_json(json).expect("valid summary JSON");
    (s.total, s.computed, s.cached, s.cache_hit_pct)
}

#[test]
fn sweep_resumes_from_store_and_exports() {
    let store = tmp_dir("resume");
    let store_arg = store.to_str().unwrap();
    let spec = repo_file("experiments/ci_smoke.json");
    let spec_arg = spec.to_str().unwrap();
    let summary_path = store.join("sweep-summary.json");
    let summary_arg = summary_path.to_str().unwrap();

    let first = stdout_of(&diq(&[
        "sweep",
        spec_arg,
        "--store",
        store_arg,
        "--summary-json",
        summary_arg,
    ]));
    assert!(first.contains("computed"), "{first}");
    // Counts are asserted on the machine-readable summary, not the prose —
    // the spec can grow grid points without breaking this test or CI.
    let (total, computed, cached, _) = summary_fields(&fs::read_to_string(&summary_path).unwrap());
    assert_eq!((computed, cached), (total, 0), "cold store computes all");

    let second = stdout_of(&diq(&[
        "sweep",
        spec_arg,
        "--store",
        store_arg,
        "--summary-json",
        summary_arg,
    ]));
    assert!(
        second.contains("100.0% cache hits"),
        "second invocation must do zero simulation work: {second}"
    );
    let (total2, computed2, cached2, pct) =
        summary_fields(&fs::read_to_string(&summary_path).unwrap());
    assert_eq!(total2, total);
    assert_eq!((computed2, cached2), (0, total), "warm store computes none");
    assert!((pct - 100.0).abs() < 1e-9);

    let export = stdout_of(&diq(&["export", "ci-smoke", "--store", store_arg]));
    assert!(export.contains("BENCH_ci-smoke.json"), "{export}");
    let summary = fs::read_to_string(store.join("BENCH_ci-smoke.json")).unwrap();
    assert!(summary.contains("\"harmonic_mean_ipc\""), "{summary}");
    assert!(summary.contains("\"energy_breakdown\""), "{summary}");

    // The exported file stands in for a stored run on either compare side
    // (CI gates a PR's store against the baseline artifact from `main`).
    let gate = diq(&[
        "compare",
        store.join("BENCH_ci-smoke.json").to_str().unwrap(),
        "ci-smoke",
        "--store",
        store_arg,
        "--threshold",
        "0.5",
    ]);
    assert_eq!(
        gate.status.code(),
        Some(0),
        "a run gated against its own export cannot regress: {}",
        String::from_utf8_lossy(&gate.stdout)
    );

    let _ = fs::remove_dir_all(store);
}

#[test]
fn compare_gates_on_ipc_regression() {
    let store = tmp_dir("compare");
    let store_arg = store.to_str().unwrap();
    // A deliberately crippled scheme (one 4-entry FIFO per side) against the
    // unbounded baseline: a large, reliable IPC regression.
    let fast = store.join("fast.json");
    fs::write(
        &fast,
        r#"{"name":"fast","instructions":[2000],"schemes":["IQ_unbounded"],"workloads":["gzip"]}"#,
    )
    .unwrap();
    let slow = store.join("slow.json");
    fs::write(
        &slow,
        r#"{"name":"slow","instructions":[2000],
            "schemes":[{"IssueFifo":{"int":{"queues":1,"entries":4},
                                     "fp":{"queues":1,"entries":4},
                                     "distributed_fus":false}}],
            "workloads":["gzip"]}"#,
    )
    .unwrap();
    stdout_of(&diq(&[
        "sweep",
        fast.to_str().unwrap(),
        "--store",
        store_arg,
    ]));
    stdout_of(&diq(&[
        "sweep",
        slow.to_str().unwrap(),
        "--store",
        store_arg,
    ]));

    let gate = diq(&["compare", "fast", "slow", "--store", store_arg]);
    assert_eq!(
        gate.status.code(),
        Some(1),
        "default 2% threshold must trip: {}",
        String::from_utf8_lossy(&gate.stdout)
    );
    assert!(String::from_utf8_lossy(&gate.stdout).contains("REGRESSION"));

    let lax = diq(&[
        "compare",
        "fast",
        "slow",
        "--store",
        store_arg,
        "--threshold",
        "99",
    ]);
    assert_eq!(lax.status.code(), Some(0));

    // The other direction is an improvement, not a regression.
    let improve = diq(&["compare", "slow", "fast", "--store", store_arg]);
    assert_eq!(improve.status.code(), Some(0));

    let _ = fs::remove_dir_all(store);
}

#[test]
fn run_accepts_suffixed_instruction_counts() {
    let out = diq(&["run", "MB_distr", "gzip", "2k"]);
    let text = stdout_of(&out);
    assert!(text.contains("2000 instrs"), "{text}");
    assert!(text.contains("energy breakdown"), "{text}");

    let bad = diq(&["run", "MB_distr", "gzip", "2.5k"]);
    assert_eq!(bad.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&bad.stderr).contains("bad instruction count"));
}

#[test]
fn usage_lists_experiment_subcommands() {
    let out = diq(&[]);
    assert_eq!(out.status.code(), Some(2));
    let usage = String::from_utf8_lossy(&out.stderr).to_string();
    for needle in ["sweep", "compare", "export", "100k"] {
        assert!(
            usage.contains(needle),
            "usage is missing `{needle}`: {usage}"
        );
    }
}
