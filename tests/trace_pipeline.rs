//! The trace pipeline end to end: a workload recorded to a `.diqt` file
//! and replayed through [`TraceReader`] must be indistinguishable from the
//! generator that recorded it — bit-identical [`SimStats`] on every
//! registered scheme — and wrong-path replay must run to completion with a
//! clean dataflow checker even though the wrong-path instructions are
//! synthesized rather than recorded.

use diq::isa::ProcessorConfig;
use diq::pipeline::{SimStats, Simulator, TraceSource};
use diq::sched::SchedulerConfig;
use diq::workload::{trace, TraceGenerator, TraceReader, WorkloadSource};
use std::path::PathBuf;

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("diqt-golden-{tag}-{}.diqt", std::process::id()))
}

fn run_generator(cfg: &ProcessorConfig, sched: &SchedulerConfig, uri: &str, n: u64) -> SimStats {
    let spec = WorkloadSource::resolve_one(uri)
        .unwrap()
        .spec()
        .cloned()
        .expect("generated workload");
    let mut sim = Simulator::new(cfg, sched);
    sim.set_benchmark(&spec.name);
    let stream = TraceGenerator::new(&spec).take(n as usize);
    sim.run_workload(&mut TraceSource::new(stream), n)
}

fn run_replay(cfg: &ProcessorConfig, sched: &SchedulerConfig, path: &PathBuf, n: u64) -> SimStats {
    let mut reader = TraceReader::open(path).expect("open trace");
    reader.set_limit(n);
    let name = reader.meta().name.clone();
    let mut sim = Simulator::new(cfg, sched);
    sim.set_benchmark(&name);
    let stats = sim.run_workload(&mut reader, n);
    assert_eq!(reader.error(), None, "replay hit an error");
    stats
}

/// Every URI scheme the registry resolves to a generated workload, recorded
/// once and replayed on every registered scheduler scheme: the stats must
/// match the live generator exactly, field for field.
#[test]
fn replayed_trace_reproduces_generator_stats_on_every_scheme() {
    let cfg = ProcessorConfig::hpca2004();
    let n = 6_000u64; // crosses a 4096-instruction block boundary
    for (tag, uri) in [
        ("kernel", "kernel:gzip"),
        ("profile", "profile:gzip/adversarial@3"),
        ("stress", "profile:misschase/stress"),
        ("bare", "swim"),
    ] {
        let spec = WorkloadSource::resolve_one(uri)
            .unwrap()
            .spec()
            .cloned()
            .unwrap();
        let path = tmp(tag);
        trace::record(
            &path,
            &spec.name,
            spec.seed,
            uri,
            TraceGenerator::new(&spec),
            n,
        )
        .unwrap();
        for sched in SchedulerConfig::known() {
            let live = run_generator(&cfg, &sched, uri, n);
            let replayed = run_replay(&cfg, &sched, &path, n);
            assert_eq!(
                live,
                replayed,
                "{uri} on {} diverges between generator and replay",
                sched.label()
            );
        }
        let _ = std::fs::remove_file(path);
    }
}

/// Wrong-path replay: the reader synthesizes plausible wrong-path
/// instructions after a redirect and seeks back on recovery. The replay
/// must commit the full budget with zero checker violations and actually
/// exercise the wrong path.
#[test]
fn wrong_path_replay_commits_cleanly() {
    let mut cfg = ProcessorConfig::hpca2004();
    cfg.wrong_path = true;
    let n = 6_000u64;
    let spec = WorkloadSource::resolve_one("profile:gzip/adversarial")
        .unwrap()
        .spec()
        .cloned()
        .unwrap();
    let path = tmp("wp");
    trace::record(
        &path,
        &spec.name,
        spec.seed,
        "wp",
        TraceGenerator::new(&spec),
        n,
    )
    .unwrap();
    for sched in [SchedulerConfig::mb_distr(), SchedulerConfig::iq_64_64()] {
        let mut reader = TraceReader::open(&path).unwrap();
        reader.set_speculative(true);
        let mut sim = Simulator::new(&cfg, &sched);
        sim.set_benchmark(&spec.name);
        let stats = sim.run_workload(&mut reader, n);
        assert_eq!(reader.error(), None);
        assert_eq!(stats.committed, n, "{}", sched.label());
        assert_eq!(stats.checker_violations, 0, "{}", sched.label());
        assert!(
            stats.wrong_path_issued > 0,
            "{}: the adversarial profile must trigger wrong-path fetch",
            sched.label()
        );
        // Wrong-path replay is still deterministic: same file, same stats.
        let mut again = TraceReader::open(&path).unwrap();
        again.set_speculative(true);
        let mut sim2 = Simulator::new(&cfg, &sched);
        sim2.set_benchmark(&spec.name);
        let stats2 = sim2.run_workload(&mut again, n);
        assert_eq!(stats, stats2, "{}", sched.label());
    }
    let _ = std::fs::remove_file(path);
}

/// A replay driven past the end of the recording just drains: shorter
/// budgets take a prefix, longer budgets commit what the trace holds.
#[test]
fn replay_budget_mismatches_are_benign() {
    let cfg = ProcessorConfig::hpca2004();
    let sched = SchedulerConfig::mb_distr();
    let spec = WorkloadSource::resolve_one("gzip")
        .unwrap()
        .spec()
        .cloned()
        .unwrap();
    let path = tmp("budget");
    trace::record(
        &path,
        &spec.name,
        spec.seed,
        "b",
        TraceGenerator::new(&spec),
        1_000,
    )
    .unwrap();
    let short = run_replay(&cfg, &sched, &path, 400);
    assert_eq!(short.committed, 400);
    let over = run_replay(&cfg, &sched, &path, 5_000);
    assert_eq!(over.committed, 1_000, "drains at the recorded length");
    let _ = std::fs::remove_file(path);
}
