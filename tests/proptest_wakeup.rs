//! Property test for the event-driven wakeup refactor: random instruction
//! traces must produce **identical `SimStats`** under the frozen scan
//! wakeup (`diq_core::reference`) and the event-driven wakeup, for every
//! registered scheme. The golden test pins the shipped grids; this hunts
//! the corners — random dependence shapes, FP/INT mixes, branch noise and
//! memory behaviour.

use diq::isa::ProcessorConfig;
use diq::pipeline::{Simulator, TraceSource};
use diq::sched::SchedulerConfig;
use diq::workload::{BenchClass, BranchPattern, MemPattern, OpMix, TraceGenerator, WorkloadSpec};
use proptest::prelude::*;

/// A random but always-valid workload spec (the shape used by the scheme
/// soundness property test, tuned to keep both sides of the machine busy).
fn arb_workload() -> impl Strategy<Value = WorkloadSpec> {
    (
        1usize..=24,  // live chains
        1usize..=6,   // min chain len
        0usize..=6,   // extra chain len
        0.0f64..0.35, // load frac
        0.0f64..0.15, // store frac
        0.0f64..0.25, // branch frac
        0.5f64..0.98, // taken bias
        0.0f64..0.3,  // noise
        0.0f64..1.0,  // fp-ness of the mix
        any::<u64>(), // seed
    )
        .prop_map(
            |(chains, len_lo, len_extra, loads, stores, branches, bias, noise, fpness, seed)| {
                WorkloadSpec {
                    name: "prop".into(),
                    class: if fpness > 0.5 {
                        BenchClass::Fp
                    } else {
                        BenchClass::Int
                    },
                    live_chains: chains,
                    chain_len: (len_lo, len_lo + len_extra),
                    chain_starts_with_load: 0.5,
                    chain_ends_with_store: 0.3,
                    cross_dep_prob: 0.1,
                    mix: OpMix {
                        int_alu: 1.0 - fpness,
                        int_mul: 0.02,
                        int_div: 0.002,
                        fp_add: fpness,
                        fp_mul: fpness * 0.8,
                        fp_div: fpness * 0.02,
                    },
                    mem: MemPattern {
                        load_frac: loads,
                        store_frac: stores,
                        footprint_bytes: 1 << 18,
                        stride: 8,
                        random_frac: 0.2,
                        pointer_chase_frac: 0.05,
                    },
                    branch: BranchPattern {
                        branch_frac: branches,
                        taken_bias: bias,
                        noise,
                        sites: 64,
                        code_bytes: 4096,
                        call_frac: 0.03,
                    },
                    seed,
                }
            },
        )
        .prop_filter("fractions must leave room for arithmetic", |s| {
            s.validate().is_ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// Scan and event-driven wakeup agree bit-for-bit on every registered
    /// scheme, for arbitrary workload shapes.
    #[test]
    fn scan_and_event_wakeup_agree_on_random_traces(spec in arb_workload()) {
        let cfg = ProcessorConfig::hpca2004();
        let n = 600u64;
        let trace = spec.generate(n as usize);
        for sched in SchedulerConfig::known() {
            let mut fast = Simulator::new(&cfg, &sched);
            fast.set_benchmark(&spec.name);
            let fast_stats = fast.run_workload(&mut TraceSource::new(trace.clone()), n);

            let mut scan = Simulator::with_scheduler(&cfg, sched.build_scan(&cfg));
            scan.set_benchmark(&spec.name);
            let scan_stats = scan.run_workload(&mut TraceSource::new(trace.clone()), n);

            prop_assert_eq!(
                &fast_stats,
                &scan_stats,
                "{}: SimStats diverge between event and scan wakeup",
                sched.label()
            );
            prop_assert_eq!(fast_stats.checker_violations, 0, "{}", sched.label());
        }
    }

    /// The same property with wrong-path speculation enabled. The workload
    /// shapes draw branch noise up to 0.3, so mispredicts (and therefore
    /// squashes at effectively random instruction ids) are frequent; every
    /// scheme must stay bit-identical to its scan reference, commit the
    /// full budget, and drain its queues to empty.
    #[test]
    fn scan_and_event_wakeup_agree_with_speculation_on(spec in arb_workload()) {
        let mut cfg = ProcessorConfig::hpca2004();
        cfg.wrong_path = true;
        let n = 600u64;
        for sched in SchedulerConfig::known() {
            let mut fast = Simulator::new(&cfg, &sched);
            fast.set_benchmark(&spec.name);
            let mut program = TraceGenerator::new(&spec);
            let fast_stats = fast.run_workload(&mut program, n);

            let mut scan = Simulator::with_scheduler(&cfg, sched.build_scan(&cfg));
            scan.set_benchmark(&spec.name);
            let mut program = TraceGenerator::new(&spec);
            let scan_stats = scan.run_workload(&mut program, n);

            prop_assert_eq!(
                &fast_stats,
                &scan_stats,
                "{}: SimStats diverge with speculation on",
                sched.label()
            );
            prop_assert_eq!(fast_stats.checker_violations, 0, "{}", sched.label());
            prop_assert_eq!(fast_stats.committed, n, "{}", sched.label());
            prop_assert_eq!(
                fast.queue_occupancy(),
                (0, 0),
                "{}: queues failed to drain after squashes",
                sched.label()
            );
            prop_assert_eq!(
                scan.queue_occupancy(),
                (0, 0),
                "{}: scan queues failed to drain",
                sched.label()
            );
        }
    }
}
