//! End-to-end proof of the `diq serve` contract: an in-process server, a
//! farm of workers on loopback, two clients racing the same spec, and a
//! worker killed mid-sweep. Asserts the three service invariants:
//!
//! 1. every point is executed (and recorded) at most once, worker crash
//!    included;
//! 2. the final store is byte-identical to a single-threaded `diq sweep` of
//!    the same spec;
//! 3. the losing concurrent submission reports 100% cache/dedup hits — it
//!    rode entirely on its peer's executions.

use diq::exp::{sweep, ExperimentSpec, Point, ResultStore};
use diq::isa::ProcessorConfig;
use diq::sched::SchedulerConfig;
use diq::serve::protocol::{read_frame, write_frame, FromServer, ToServer, PROTOCOL_VERSION};
use diq::serve::{run_worker, Client, ServeConfig, WorkerOptions};
use diq::workload::suite;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

/// 2 schemes x 2 workloads x 2 counts = 8 distinct points, all small.
const SPEC: &str = r#"{
    "name": "serve-e2e",
    "instructions": [300, 500],
    "schemes": ["MB_distr", "IQ_64_64"],
    "workloads": ["gzip", "swim"]
}"#;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("diq-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn distributed_sweep_with_worker_crash_matches_single_process_sweep() {
    let served_dir = tmp_dir("served");
    let swept_dir = tmp_dir("swept");

    let handle = ServeConfig {
        addr: "127.0.0.1:0".into(),
        store_dir: served_dir.clone(),
        lease: Duration::from_secs(10),
        reap_every: Duration::from_millis(25),
        quiet: true,
    }
    .spawn()
    .unwrap();
    let addr = handle.addr().to_string();

    // A doomed worker: registers, announces idle, takes one assignment,
    // then "crashes" (drops the socket without delivering). The server must
    // notice the EOF and reassign its lease to a surviving worker.
    let mut doomed = TcpStream::connect(&addr).unwrap();
    write_frame(
        &mut doomed,
        &ToServer::Register {
            name: "doomed".into(),
            protocol: PROTOCOL_VERSION,
        },
    )
    .unwrap();
    let FromServer::Registered { .. } = read_frame(&mut doomed).unwrap() else {
        panic!("expected Registered");
    };
    write_frame(&mut doomed, &ToServer::Idle).unwrap();

    // Two clients race the identical spec. The submissions serialize on the
    // server, so exactly one claims the whole grid; the doomed worker grabs
    // its first point the moment the claimer's dispatch runs.
    let submits: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                client
                    .submit_and_watch(SPEC, None, Duration::from_millis(10))
                    .unwrap()
            })
        })
        .collect();

    // Let the doomed worker receive its assignment, then kill it.
    let FromServer::Assign { .. } = read_frame(&mut doomed).unwrap() else {
        panic!("expected Assign");
    };
    drop(doomed);

    // The survivors drain everything, the crashed point included.
    let workers: Vec<_> = (0..3)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                run_worker(
                    &addr,
                    &WorkerOptions {
                        name: format!("survivor-{i}"),
                        ..WorkerOptions::default()
                    },
                )
                .unwrap()
            })
        })
        .collect();

    let mut summaries: Vec<_> = submits.into_iter().map(|t| t.join().unwrap()).collect();

    // (3) The two racing clients split the grid 8/0: one computed all of
    // it, the other rode the in-flight/stored dedup for 100% cache hits.
    summaries.sort_by_key(|s| s.computed);
    assert_eq!(summaries[0].total, 8);
    assert_eq!(summaries[1].total, 8);
    assert_eq!(summaries[0].computed, 0, "loser shares every execution");
    assert_eq!(summaries[1].computed, 8, "winner claims the whole grid");
    assert_eq!(summaries[0].cached, 8);
    assert!((summaries[0].cache_hit_pct - 100.0).abs() < 1e-12);

    // (1) At most once: 8 distinct points, 8 accepted results.
    assert_eq!(handle.results_accepted(), 8);

    // Stop the server first — the survivors run until it closes their
    // connections — then check their execution counts add up exactly: the
    // doomed worker's point ran once on a survivor, never twice.
    Client::connect(&addr).unwrap().shutdown_server().unwrap();
    handle.wait().unwrap();
    let executed: usize = workers
        .into_iter()
        .map(|t| t.join().unwrap().executed)
        .sum();
    assert_eq!(executed, 8, "reassigned point executes exactly once");

    // (2) Byte identity: a single-threaded in-process sweep of the same
    // spec produces the same store.jsonl, byte for byte, and the same
    // manifest.
    let spec = ExperimentSpec::from_json(SPEC).unwrap();
    let swept_store = ResultStore::open(&swept_dir).unwrap();
    let outcome = sweep(&spec, &swept_store, 1).unwrap();
    assert_eq!(outcome.computed, 8);

    let served_store = ResultStore::open(&served_dir).unwrap();
    let served_bytes = served_store.raw_bytes().unwrap();
    assert!(!served_bytes.is_empty());
    assert_eq!(
        served_bytes,
        swept_store.raw_bytes().unwrap(),
        "served store must be byte-identical to a single-process sweep"
    );
    assert_eq!(
        served_store.read_manifest("serve-e2e").unwrap(),
        swept_store.read_manifest("serve-e2e").unwrap()
    );

    let _ = std::fs::remove_dir_all(&served_dir);
    let _ = std::fs::remove_dir_all(&swept_dir);
}

#[test]
fn worker_losing_the_server_mid_point_exits_with_an_error() {
    // A fake server assigns one point and then vanishes. The worker is left
    // computing under a lease nobody is renewing; once it notices — a dead
    // heartbeat socket or a failed result delivery — `run_worker` must
    // return `Err`, never a clean report. (The pre-fix worker swallowed the
    // failed delivery as a clean retirement, so `diq worker` exited zero
    // and smoke tests green-washed a crashed farm.)
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();

    let fake_server = std::thread::spawn(move || {
        let (mut sock, _) = listener.accept().unwrap();
        let ToServer::Register { .. } = read_frame(&mut sock).unwrap() else {
            panic!("expected Register");
        };
        write_frame(&mut sock, &FromServer::Registered { worker: 1 }).unwrap();
        loop {
            match read_frame::<ToServer, _>(&mut sock).unwrap() {
                ToServer::Idle => break,
                ToServer::Heartbeat => {}
                other => panic!("expected Idle, got {other:?}"),
            }
        }
        // A point big enough that several 1 ms heartbeats fire while it
        // executes — the worker must notice the dead socket mid-compute.
        let point = Point::new(
            ProcessorConfig::hpca2004(),
            SchedulerConfig::mb_distr(),
            suite::by_name("gzip").unwrap(),
            20_000,
        );
        write_frame(&mut sock, &FromServer::Assign { lease: 7, point }).unwrap();
        drop(sock); // the server "crashes" mid-point
    });

    let report = run_worker(
        &addr,
        &WorkerOptions {
            name: "orphaned".into(),
            heartbeat: Duration::from_millis(1),
        },
    );
    fake_server.join().unwrap();
    assert!(
        report.is_err(),
        "a worker that computed a point it could not deliver must exit \
         nonzero, got {report:?}"
    );
}

#[test]
fn submit_against_a_warm_store_is_pure_cache() {
    // A served sweep after an in-process sweep of the same spec: nothing
    // executes, no worker is even needed, and the reply is immediate.
    let dir = tmp_dir("warm");
    let spec = ExperimentSpec::from_json(SPEC).unwrap();
    let store = ResultStore::open(&dir).unwrap();
    sweep(&spec, &store, 2).unwrap();
    let before = store.raw_bytes().unwrap();

    let handle = ServeConfig {
        addr: "127.0.0.1:0".into(),
        store_dir: dir.clone(),
        quiet: true,
        ..ServeConfig::default()
    }
    .spawn()
    .unwrap();
    let addr = handle.addr().to_string();

    let mut client = Client::connect(&addr).unwrap();
    let (_, view) = client.submit(SPEC, None).unwrap();
    assert!(view.done, "warm submit completes synchronously");
    assert_eq!(view.computed, 0);
    assert_eq!(view.cached, 8);
    let summary = view.summary.expect("done job carries its summary");
    assert!((summary.cache_hit_pct - 100.0).abs() < 1e-12);

    client.shutdown_server().unwrap();
    handle.wait().unwrap();
    let after = ResultStore::open(&dir).unwrap().raw_bytes().unwrap();
    assert_eq!(after, before, "store untouched by a cache-only job");
    let _ = std::fs::remove_dir_all(&dir);
}
