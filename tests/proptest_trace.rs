//! Property tests for the `.diqt` trace pipeline: any generated stream
//! round-trips through record + replay bit-identically, the block codec
//! round-trips arbitrary bytes, and truncated or corrupted files produce
//! clean errors — never panics, and never a successful verify over a
//! stream that differs from the recording.

use diq::workload::{suite, trace, TraceGenerator, TraceReader, WorkloadSpec};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmp(tag: &str) -> PathBuf {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "diqt-prop-{tag}-{}-{case}.diqt",
        std::process::id()
    ))
}

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    let names: Vec<String> = suite::all().into_iter().map(|w| w.name).collect();
    let count = names.len();
    (0usize..count, any::<u64>()).prop_map(move |(i, seed)| {
        let mut spec = suite::by_name(&names[i]).expect("suite benchmark");
        spec.seed = seed;
        spec
    })
}

/// Reads every instruction of a trace file.
fn read_all(path: &PathBuf) -> Result<Vec<diq::isa::Inst>, trace::TraceError> {
    let mut reader = TraceReader::open(path)?;
    let mut out = Vec::new();
    while let Some(inst) = reader.try_next()? {
        out.push(inst);
    }
    Ok(out)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        .. ProptestConfig::default()
    })]

    /// Record → replay is the identity on the instruction stream, for any
    /// suite model at any seed, across block-boundary-straddling lengths.
    #[test]
    fn recorded_stream_replays_bit_identically(
        spec in arb_spec(),
        n in 1u64..=9_000,
    ) {
        let path = tmp("rt");
        let original: Vec<_> = TraceGenerator::new(&spec).take(n as usize).collect();
        let meta = trace::record(&path, &spec.name, spec.seed, "prop", original.iter().copied(), n)
            .unwrap();
        prop_assert_eq!(meta.instructions, n);
        let replayed = read_all(&path).unwrap();
        prop_assert_eq!(&original, &replayed);
        // And verify() agrees the file is intact.
        TraceReader::open(&path).unwrap().verify().unwrap();
        let _ = std::fs::remove_file(path);
    }

    /// The block codec round-trips arbitrary byte soup, including highly
    /// repetitive input (long matches) and incompressible noise.
    #[test]
    fn lzblock_round_trips_arbitrary_bytes(
        data in collection::vec(any::<u8>(), 0..4096),
        stutter in 0usize..64,
    ) {
        // Splice in repetition so match emission is actually exercised.
        let mut input = data.clone();
        for chunk in data.chunks(97).take(stutter) {
            input.extend_from_slice(chunk);
        }
        let mut comp = Vec::new();
        lzblock::compress(&input, &mut comp);
        prop_assert!(comp.len() <= lzblock::max_compressed_len(input.len()));
        let mut back = Vec::new();
        lzblock::decompress(&comp, input.len(), &mut back).unwrap();
        prop_assert_eq!(&input, &back);
    }

    /// A trace truncated at any byte length fails cleanly: open or read
    /// returns an error — no panic, no silent short stream.
    #[test]
    fn truncated_traces_fail_cleanly(
        seed in any::<u64>(),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut spec = suite::by_name("gzip").unwrap();
        spec.seed = seed;
        let path = tmp("trunc");
        trace::record(&path, "t", seed, "prop", TraceGenerator::new(&spec), 5_000).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        prop_assert!(
            read_all(&path).is_err(),
            "a {cut}-byte prefix of a {}-byte trace must not read back",
            bytes.len()
        );
        let _ = std::fs::remove_file(path);
    }

    /// `set_limit` vs checkpoint/restore ordering: whatever order limits
    /// and seeks arrive in, a restored stream drains at the budget that is
    /// *current*, not the one in force when the checkpoint was taken — and
    /// a restore to the exact drain position (seek's same-index fast path)
    /// re-arms the stream just like any other restore.
    #[test]
    fn limit_changes_across_checkpoint_restore_drain_at_the_current_budget(
        seed in any::<u64>(),
        cut_a in 1u64..2_000,
        cut_b in 1u64..2_000,
        checkpoint_frac in 0.0f64..1.0,
    ) {
        let n = 2_000u64;
        let (tight, loose) = (cut_a.min(cut_b), cut_a.max(cut_b).max(cut_a.min(cut_b) + 1));
        let mut spec = suite::by_name("gzip").unwrap();
        spec.seed = seed;
        let path = tmp("limit");
        trace::record(&path, "t", seed, "prop", TraceGenerator::new(&spec), n).unwrap();

        let mut r = TraceReader::open(&path).unwrap();
        r.set_limit(loose);
        let checkpoint_at = ((tight - 1) as f64 * checkpoint_frac) as u64;
        for _ in 0..checkpoint_at {
            r.try_next().unwrap().unwrap();
        }
        let checkpoint = r.pos();
        // Drain at the loose budget.
        let mut drained = checkpoint_at;
        while r.try_next().unwrap().is_some() {
            drained += 1;
        }
        prop_assert_eq!(drained, loose.min(n), "first drain obeys the loose limit");

        // Tighten AFTER the checkpoint, then restore: the new budget wins.
        r.set_limit(tight);
        r.seek(checkpoint).unwrap();
        let mut count = checkpoint_at;
        while r.try_next().unwrap().is_some() {
            count += 1;
        }
        prop_assert_eq!(count, tight, "restored stream must drain at the tightened budget");

        // Restore to the exact drain position and loosen: the same-index
        // seek still re-arms, and the stream continues to the new budget.
        let at_drain = r.pos();
        r.seek(at_drain).unwrap();
        r.set_limit(loose);
        let mut count = tight;
        while r.try_next().unwrap().is_some() {
            count += 1;
        }
        prop_assert_eq!(count, loose.min(n), "same-position restore re-arms the stream");
        let _ = std::fs::remove_file(path);
    }

    /// A single flipped byte anywhere in the file either errors cleanly or
    /// leaves the instruction stream untouched (flips inside footer
    /// metadata that is not stream-affecting, e.g. the recorded name).
    /// Checksums make silent stream corruption impossible.
    #[test]
    fn corrupted_traces_never_panic_or_lie(
        seed in any::<u64>(),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut spec = suite::by_name("swim").unwrap();
        spec.seed = seed;
        let path = tmp("corrupt");
        let original: Vec<_> = TraceGenerator::new(&spec).take(3_000).collect();
        trace::record(&path, "t", seed, "prop", original.iter().copied(), 3_000).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= flip;
        std::fs::write(&path, &bytes).unwrap();
        if let Ok(stream) = read_all(&path) {
            prop_assert_eq!(
                &original, &stream,
                "corruption at byte {} read back a different stream", pos
            );
        }
        let _ = std::fs::remove_file(path);
    }
}

/// Raising the limit after the stream reported end-of-stream must NOT
/// resurrect it: the run loop treats `None` as final, so a source that
/// springs back to life mid-protocol would feed instructions nobody is
/// budgeting for. Only an explicit `seek` re-arms a drained reader.
#[test]
fn raising_the_limit_does_not_resurrect_a_drained_stream() {
    let spec = suite::by_name("gzip").unwrap();
    let path = tmp("resurrect");
    trace::record(
        &path,
        "t",
        spec.seed,
        "test",
        TraceGenerator::new(&spec),
        2_000,
    )
    .unwrap();

    let mut r = TraceReader::open(&path).unwrap();
    r.set_limit(100);
    let mut count = 0;
    while r.try_next().unwrap().is_some() {
        count += 1;
    }
    assert_eq!(count, 100);

    r.set_limit(200);
    assert_eq!(
        r.try_next().unwrap(),
        None,
        "a drained stream must stay drained when the limit is raised"
    );

    // An explicit reposition is the sanctioned way back in.
    let pos = r.pos();
    r.seek(pos).unwrap();
    let mut count = 100;
    while r.try_next().unwrap().is_some() {
        count += 1;
    }
    assert_eq!(count, 200, "after a seek the stream reads to the new limit");
    let _ = std::fs::remove_file(path);
}
