//! Property test for `Scheduler::squash`: squashing at a random `InstId`
//! must remove exactly the younger entries and leave **no ghost wakeup
//! consumers** — after the squash, instruction ids are reused (as the
//! pipeline's recovery does) and every pending tag is broadcast; a stale
//! waiter would either wake a dead slab slot (debug panic) or flip a ready
//! bit on the entry that reused the slot, which diverges from the frozen
//! scan reference. The event-driven and scan models must issue the same
//! instructions in the same order and drain to empty.

use diq::isa::{ArchReg, Cycle, InstId, OpClass, PhysReg, ProcessorConfig, RegClass};
use diq::sched::{DispatchInst, IssueSink, Scheduler, SchedulerConfig, Side};
use proptest::prelude::*;
use std::collections::HashSet;

/// Physical-register indices standing in for in-flight producers: sources
/// drawn from this pool are "not ready" until their tag is broadcast.
const PENDING_BASE: usize = 150;
const PENDING_TAGS: usize = 6;

fn pending_tag(class: RegClass, k: usize) -> PhysReg {
    PhysReg::new(class, (PENDING_BASE + k) as u16)
}

/// An [`IssueSink`] that accepts everything and records the issue order.
/// `is_ready` answers from the broadcast set, so the scan models (which
/// poll readiness through the sink) observe exactly the same world as the
/// event-driven models (which were woken by `on_result`).
struct RecordingSink {
    broadcast: HashSet<(usize, usize)>,
    issued: Vec<InstId>,
}

impl RecordingSink {
    fn new() -> Self {
        RecordingSink {
            broadcast: HashSet::new(),
            issued: Vec::new(),
        }
    }

    fn mark_ready(&mut self, r: PhysReg) {
        self.broadcast.insert((r.class().index(), r.index()));
    }
}

impl IssueSink for RecordingSink {
    fn is_ready(&self, r: PhysReg) -> bool {
        if (PENDING_BASE..PENDING_BASE + PENDING_TAGS).contains(&r.index()) {
            self.broadcast.contains(&(r.class().index(), r.index()))
        } else {
            true
        }
    }

    fn try_issue(&mut self, inst: InstId, _op: OpClass, _queue: Option<(Side, usize)>) -> bool {
        self.issued.push(inst);
        true
    }
}

/// One randomly-shaped instruction: FP or integer side, and up to two
/// sources drawn from the pending-tag pool.
#[derive(Clone, Debug)]
struct RandInst {
    fp: bool,
    src1: Option<usize>,
    src2: Option<usize>,
}

fn arb_inst() -> impl Strategy<Value = RandInst> {
    (
        any::<bool>(),
        any::<bool>(),
        0..PENDING_TAGS,
        any::<bool>(),
        0..PENDING_TAGS,
    )
        .prop_map(|(fp, has1, k1, has2, k2)| RandInst {
            fp,
            src1: has1.then_some(k1),
            src2: has2.then_some(k2),
        })
}

fn dispatch_inst(id: u64, seq: usize, r: &RandInst) -> DispatchInst {
    let class = if r.fp { RegClass::Fp } else { RegClass::Int };
    let op = if r.fp {
        OpClass::FpAdd
    } else {
        OpClass::IntAlu
    };
    let dst_arch = ArchReg::new(class, (8 + seq % 16) as u8);
    let mk = |t: Option<usize>| t.map(|k| pending_tag(class, k));
    let srcs = [mk(r.src1), mk(r.src2)];
    // Architectural sources alias the dst_arch space so the dependence
    // steering (FIFO tails, MixBUFF chains) really engages and squash has
    // steering state to clean up.
    let arch = |t: Option<usize>| t.map(|k| ArchReg::new(class, (8 + (k * 3) % 16) as u8));
    DispatchInst {
        id: InstId(id),
        op,
        dst: Some(PhysReg::new(class, (40 + seq % 100) as u16)),
        srcs,
        srcs_ready: [srcs[0].is_none(), srcs[1].is_none()],
        src_arch: [arch(r.src1), arch(r.src2)],
        dst_arch: Some(dst_arch),
    }
}

/// Runs the scenario on one scheduler; returns the dispatch-acceptance
/// bitmap and the issue order.
fn run_scenario(
    sched: &mut dyn Scheduler,
    first: &[RandInst],
    second: &[RandInst],
    squash_at: u64,
) -> (Vec<bool>, Vec<InstId>) {
    let mut accepted: Vec<bool> = Vec::new();
    // Phase A: dispatch the first batch (dispatch may legitimately stall;
    // both models must stall on the same instructions).
    for (i, r) in first.iter().enumerate() {
        let d = dispatch_inst(i as u64, i, r);
        accepted.push(sched.try_dispatch(&d, 0).is_ok());
    }
    // Phase B: wrong-path squash at a random point, then reuse the id
    // range for the "correct path", listening on the same tags — exactly
    // the aliasing pattern that exposes stale waiters.
    sched.squash(InstId(squash_at));
    sched.on_mispredict();
    for (j, r) in second.iter().enumerate() {
        let d = dispatch_inst(squash_at + j as u64, first.len() + j, r);
        accepted.push(sched.try_dispatch(&d, 1).is_ok());
    }
    // Phase C: broadcast every pending tag, then select until dry.
    let mut sink = RecordingSink::new();
    for class in [RegClass::Int, RegClass::Fp] {
        for k in 0..PENDING_TAGS {
            let tag = pending_tag(class, k);
            sink.mark_ready(tag);
            sched.on_result(tag, 2);
        }
    }
    for now in 2..300u64 {
        sched.issue_cycle(now as Cycle, &mut sink);
        let (i, f) = sched.occupancy();
        if i + f == 0 {
            break;
        }
    }
    let (i, f) = sched.occupancy();
    assert_eq!(
        (i, f),
        (0, 0),
        "{} did not drain after squash",
        sched.name()
    );
    (accepted, sink.issued)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    /// For every registered scheme: squash at a random id, reuse the id
    /// range, broadcast everything — the event-driven path must match the
    /// frozen scan reference exactly and drain to empty (no ghost wakeups,
    /// no stale ready state, no leaked occupancy).
    #[test]
    fn squash_leaves_no_ghost_wakeups(
        first in collection::vec(arb_inst(), 1..40),
        second in collection::vec(arb_inst(), 1..20),
        squash_frac in 0.0f64..1.0,
    ) {
        let cfg = ProcessorConfig::hpca2004();
        let squash_at = (first.len() as f64 * squash_frac) as u64;
        for sc in SchedulerConfig::known() {
            let mut fast = sc.build(&cfg);
            let mut scan = sc.build_scan(&cfg);
            let (fast_acc, fast_issued) = run_scenario(fast.as_mut(), &first, &second, squash_at);
            let (scan_acc, scan_issued) = run_scenario(scan.as_mut(), &first, &second, squash_at);
            prop_assert_eq!(
                &fast_acc,
                &scan_acc,
                "{}: dispatch acceptance diverged",
                sc.label()
            );
            prop_assert_eq!(
                &fast_issued,
                &scan_issued,
                "{}: issue order diverged after squash",
                sc.label()
            );
            // Exactly the accepted survivors of the first batch plus the
            // accepted second batch issue — nothing squashed, nothing
            // leaked, nothing twice. (Every tag was broadcast and the sink
            // accepts everything, so every live entry must come out.)
            let mut expected: Vec<InstId> = (0..first.len())
                .filter(|&i| fast_acc[i] && (i as u64) < squash_at)
                .map(|i| InstId(i as u64))
                .chain(
                    (0..second.len())
                        .filter(|&j| fast_acc[first.len() + j])
                        .map(|j| InstId(squash_at + j as u64)),
                )
                .collect();
            expected.sort_unstable();
            let mut issued_sorted = fast_issued.clone();
            issued_sorted.sort_unstable();
            prop_assert_eq!(
                issued_sorted,
                expected,
                "{}: issued set is not exactly survivors + reused batch",
                sc.label()
            );
        }
    }
}
