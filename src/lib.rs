//! # diq — the HPCA 2004 *Low-Complexity Distributed Issue Queue*, in Rust
//!
//! This is the façade crate of the workspace: it re-exports every component
//! crate under a friendly module name so applications need a single
//! dependency.
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`isa`] | `diq-isa` | instructions, registers, Table 1 configuration |
//! | [`sched`] | `diq-core` | the issue-queue schemes (the paper's contribution) |
//! | [`pipeline`] | `diq-pipeline` | the 8-wide out-of-order core |
//! | [`workload`] | `diq-workload` | synthetic SPEC2000-like workload models |
//! | [`branch`] | `diq-branch` | hybrid branch predictor + BTB |
//! | [`mem`] | `diq-mem` | cache hierarchy |
//! | [`power`] | `diq-power` | CACTI-lite energy model + activity meter |
//! | [`stats`] | `diq-stats` | counters, means, text tables |
//! | [`sim`] | `diq-sim` | the experiment harness for every paper figure |
//!
//! # Quickstart
//!
//! Run one synthetic benchmark under the paper's distributed MixBUFF scheme
//! (`MB_distr`) and under the conventional CAM baseline (`IQ_64_64`), then
//! compare IPC and issue-queue energy — see `examples/quickstart.rs` for the
//! full program.

#![deny(missing_docs)]

/// Instructions, registers and machine configuration (re-export of `diq-isa`).
pub mod isa {
    pub use diq_isa::*;
}

/// Issue-queue schemes: CAM baseline, IssueFIFO, LatFIFO, MixBUFF
/// (re-export of `diq-core`).
pub mod sched {
    pub use diq_core::*;
}

/// The out-of-order superscalar core (re-export of `diq-pipeline`).
pub mod pipeline {
    pub use diq_pipeline::*;
}

/// Synthetic workload models and trace generation (re-export of
/// `diq-workload`).
pub mod workload {
    pub use diq_workload::*;
}

/// Branch prediction (re-export of `diq-branch`).
pub mod branch {
    pub use diq_branch::*;
}

/// Cache hierarchy (re-export of `diq-mem`).
pub mod mem {
    pub use diq_mem::*;
}

/// Energy modelling (re-export of `diq-power`).
pub mod power {
    pub use diq_power::*;
}

/// Statistics utilities (re-export of `diq-stats`).
pub mod stats {
    pub use diq_stats::*;
}

/// Experiment harness for the paper's tables and figures (re-export of
/// `diq-sim`).
pub mod sim {
    pub use diq_sim::*;
}

/// Experiment orchestration: declarative sweep specs, the deterministic
/// parallel runner, and the persistent result store (re-export of `diq-exp`).
pub mod exp {
    pub use diq_exp::*;
}

/// Sweep-as-a-service: the `diq serve` server, distributed workers, and
/// submit clients (re-export of `diq-serve`).
pub mod serve {
    pub use diq_serve::*;
}

/// The command-line surface shared by the `diq` binary and its tests.
pub mod cli {
    use diq_core::SchedulerConfig;

    /// Every scheme label `diq list` advertises, in display order.
    ///
    /// Each entry round-trips through [`scheme_by_name`]:
    /// `scheme_by_name(l).unwrap().label() == l`. The registry itself lives
    /// in `diq-core` ([`SchedulerConfig::KNOWN_LABELS`]) so experiment specs
    /// can resolve labels without this crate.
    pub const SCHEME_LABELS: [&str; 9] = SchedulerConfig::KNOWN_LABELS;

    /// The configurations behind [`SCHEME_LABELS`], in the same order.
    #[must_use]
    pub fn known_schemes() -> Vec<SchedulerConfig> {
        SchedulerConfig::known()
    }

    /// Resolves an advertised scheme label to its configuration.
    #[must_use]
    pub fn scheme_by_name(name: &str) -> Option<SchedulerConfig> {
        SchedulerConfig::by_label(name)
    }

    /// Parses an instruction count with an optional magnitude suffix
    /// (re-export of [`diq_exp::parse_count`]): `"250000"`, `"100k"`,
    /// `"5M"`, `"1G"`, with `_` separators allowed.
    #[must_use]
    pub fn parse_count(s: &str) -> Option<u64> {
        diq_exp::parse_count(s)
    }
}
