//! `diq` — command-line front end for the HPCA 2004 distributed issue
//! queue reproduction.
//!
//! ```text
//! diq list                          benchmarks and schemes
//! diq run <scheme> <benchmark> [n]  one simulation, full statistics
//! diq figure <id>                   regenerate one paper artifact (fig2..fig15,
//!                                   tab1, sec3, headline)
//! diq figures                       regenerate everything
//! ```

use diq::cli::{scheme_by_name, SCHEME_LABELS};
use diq::pipeline::Simulator;
use diq::sim::{figures, Figure, Harness};
use diq::workload::suite;

fn figure_by_id(id: &str, h: &Harness) -> Option<Figure> {
    Some(match id {
        "tab1" => figures::table1(h),
        "fig2" => figures::fig2(h),
        "fig3" => figures::fig3(h),
        "fig4" => figures::fig4(h),
        "fig6" => figures::fig6(h),
        "sec3" => figures::section3_claims(h),
        "fig7" => figures::fig7(h),
        "fig8" => figures::fig8(h),
        "fig9" => figures::fig9(h),
        "fig10" => figures::fig10(h),
        "fig11" => figures::fig11(h),
        "fig12" => figures::fig12(h),
        "fig13" => figures::fig13(h),
        "fig14" => figures::fig14(h),
        "fig15" => figures::fig15(h),
        "headline" => figures::headline(h),
        _ => return None,
    })
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  diq list\n  diq run <scheme> <benchmark> [instructions]\n  diq figure <id>\n  diq figures\n\nDIQ_INSTRS sets the per-benchmark instruction count for figures."
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("benchmarks (synthetic SPEC2000 models):");
            for s in suite::all() {
                println!(
                    "  {:10} ({:?}, {} live chains)",
                    s.name, s.class, s.live_chains
                );
            }
            println!("\nschemes:");
            for label in SCHEME_LABELS {
                println!("  {label}");
            }
        }
        Some("run") => {
            let (Some(scheme_name), Some(bench_name)) = (args.get(1), args.get(2)) else {
                usage();
            };
            let Some(scheme) = scheme_by_name(scheme_name) else {
                eprintln!("unknown scheme `{scheme_name}` (see `diq list`)");
                std::process::exit(1);
            };
            let Some(bench) = suite::by_name(bench_name) else {
                eprintln!("unknown benchmark `{bench_name}` (see `diq list`)");
                std::process::exit(1);
            };
            let n: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(100_000);
            let cfg = diq::isa::ProcessorConfig::hpca2004();
            let mut sim = Simulator::new(&cfg, &scheme);
            sim.set_benchmark(&bench.name);
            let stats = sim.run(bench.generate(n as usize), n);
            println!("{stats}");
            println!("energy breakdown:");
            for (c, pj) in stats.energy.breakdown() {
                println!(
                    "  {:12} {:8.1} nJ ({:4.1}%)",
                    c.paper_label(),
                    pj / 1e3,
                    100.0 * stats.energy.fraction(c)
                );
            }
        }
        Some("figure") => {
            let Some(id) = args.get(1) else { usage() };
            let h = Harness::new();
            match figure_by_id(id, &h) {
                Some(fig) => println!("{fig}"),
                None => {
                    eprintln!(
                        "unknown figure `{id}` (tab1, fig2-fig4, fig6-fig15, sec3, headline)"
                    );
                    std::process::exit(1);
                }
            }
        }
        Some("figures") => {
            let h = Harness::new();
            for fig in figures::all(&h) {
                println!("{fig}");
            }
        }
        _ => usage(),
    }
}
