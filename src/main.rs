//! `diq` — command-line front end for the HPCA 2004 distributed issue
//! queue reproduction.
//!
//! ```text
//! diq list                          benchmarks and schemes
//! diq run <scheme> <workload> [n]   one simulation, full statistics
//! diq trace record|info|ingest      record, inspect, ingest .diqt traces
//! diq figure <id>                   regenerate one paper artifact (fig2..fig15,
//!                                   tab1, sec3, headline)
//! diq figures                       regenerate everything
//! diq sweep <spec.json>             run an experiment grid, resumably
//! diq bench <spec.json>             simulator-throughput run over a grid
//! diq compare <run-a> <run-b>       per-point deltas + regression gate
//! diq export <run>                  write a BENCH_<run>.json summary
//! diq serve                         sweep-as-a-service server
//! diq worker --connect HOST:PORT    join a server as an execution worker
//! diq submit <spec.json>            send a spec to a server
//! ```

use diq::cli::{parse_count, scheme_by_name, SCHEME_LABELS};
use diq::exp::{
    sweep_as, Comparison, ExperimentSpec, Point, ResultStore, RunSummary, ThroughputPoint,
    ThroughputProbe, ThroughputSummary,
};
use diq::serve::{run_worker, Client, ServeConfig, WorkerOptions};
use diq::sim::{figures, Figure, Harness};
use diq::workload::{suite, trace, TraceGenerator, WorkloadSource};
use std::time::Duration;

/// Default `diq serve` endpoint, shared by server, worker and submit.
const DEFAULT_SERVE_ADDR: &str = "127.0.0.1:7457";

fn figure_by_id(id: &str, h: &Harness) -> Option<Figure> {
    Some(match id {
        "tab1" => figures::table1(h),
        "fig2" => figures::fig2(h),
        "fig3" => figures::fig3(h),
        "fig4" => figures::fig4(h),
        "fig6" => figures::fig6(h),
        "sec3" => figures::section3_claims(h),
        "fig7" => figures::fig7(h),
        "fig8" => figures::fig8(h),
        "fig9" => figures::fig9(h),
        "fig10" => figures::fig10(h),
        "fig11" => figures::fig11(h),
        "fig12" => figures::fig12(h),
        "fig13" => figures::fig13(h),
        "fig14" => figures::fig14(h),
        "fig15" => figures::fig15(h),
        "headline" => figures::headline(h),
        _ => return None,
    })
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         diq list\n  \
         diq run <scheme> <workload> [instructions]\n  \
         diq trace record <workload> [-n COUNT] [-o FILE.diqt]\n  \
         diq trace info <FILE.diqt> [--json]\n  \
         diq trace ingest <FILE.csv|-> -o FILE.diqt [-n NAME]\n  \
         diq figure <id>\n  \
         diq figures\n  \
         diq sweep <spec.json> [--store DIR] [--threads N] [--name RUN] [--summary-json FILE|-]\n  \
         diq bench <spec.json> [--name RUN] [--out DIR] [--e2e-bin BIN]\n  \
         \x20         [--baseline FILE] [--min-ratio X]\n  \
         diq compare <run-a> <run-b> [--store DIR] [--threshold PCT]\n  \
         diq export <run> [--store DIR] [--out FILE]\n  \
         diq serve [--addr HOST:PORT] [--store DIR] [--lease SECS]\n  \
         diq worker --connect HOST:PORT [--name NAME]\n  \
         diq submit <spec.json> [--connect HOST:PORT] [--name RUN] [--watch]\n  \
         \x20         [--summary-json FILE|-]\n  \
         diq submit --shutdown [--connect HOST:PORT]\n\n\
         Workloads are URIs anywhere a workload is named: kernel:gzip,\n\
         profile:gzip/adversarial@7 (expected|stress|adversarial variants,\n\
         seeded), trace:path/to/f.diqt (recorded streams), group:all, or a\n\
         bare name. `diq trace record` replays bit-identically via trace:.\n\
         Instruction counts accept 100k/5M/1G suffixes, here and in DIQ_INSTRS\n\
         (the per-benchmark count for figures). The result store defaults to\n\
         ./results; `diq compare` exits 1 when run-b's geomean IPC regresses\n\
         more than the threshold (default 2%) against run-a. Either compare\n\
         side may be a stored run name or a path to an exported BENCH_*.json.\n\
         `diq bench` measures simulated instrs/sec per grid point (event vs\n\
         scan on two threads; per-stage wall-clock shares when built with\n\
         --features profile), writes BENCH_<run>.json to --out (default .),\n\
         and exits 1 when the geomean end-to-end instrs/sec ratio against a\n\
         --baseline BENCH_*.json falls below --min-ratio (default 1.0).\n\
         `diq serve` keeps the sweep machinery resident: submitted specs are\n\
         deduped against the store and against points other jobs are already\n\
         computing, points go to idle workers under leases (crashed workers'\n\
         points are reassigned), and the store bytes stay identical to a\n\
         single-process sweep. Default endpoint {DEFAULT_SERVE_ADDR}."
    );
    std::process::exit(2);
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

/// Splits `args` into positionals and recognised `--flag value` options.
fn parse_flags(
    args: &[String],
    allowed: &[&str],
) -> (Vec<String>, std::collections::HashMap<String, String>) {
    let mut positional = Vec::new();
    let mut flags = std::collections::HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if !allowed.contains(&name) {
                fail(format!("unknown option `--{name}`"));
            }
            let Some(v) = it.next() else {
                fail(format!("option `--{name}` needs a value"));
            };
            flags.insert(name.to_string(), v.clone());
        } else {
            positional.push(a.clone());
        }
    }
    (positional, flags)
}

fn open_store(flags: &std::collections::HashMap<String, String>) -> ResultStore {
    let dir = flags.get("store").map_or("results", String::as_str);
    ResultStore::open(dir).unwrap_or_else(|e| fail(format!("open store `{dir}`: {e}")))
}

fn cmd_run(args: &[String]) {
    let (Some(scheme_name), Some(workload_uri)) = (args.first(), args.get(1)) else {
        usage();
    };
    let Some(scheme) = scheme_by_name(scheme_name) else {
        fail(format!("unknown scheme `{scheme_name}` (see `diq list`)"));
    };
    // One resolution path with `diq sweep` and `diq serve`: any workload
    // URI (kernel:, profile:, trace:, or a bare name) runs here.
    let source = WorkloadSource::resolve_one(workload_uri).unwrap_or_else(|e| fail(e));
    let n: u64 = match args.get(2) {
        Some(s) => parse_count(s)
            .unwrap_or_else(|| fail(format!("bad instruction count `{s}` (try 250000 or 100k)"))),
        None => diq::exp::DEFAULT_INSTRUCTIONS,
    };
    // One execution path with the harness and `diq sweep`: a Point streams
    // its workload, so memory stays O(1) in the instruction count.
    let cfg = diq::isa::ProcessorConfig::hpca2004();
    let stats = Point::from_source(cfg, scheme, source, n).execute();
    println!("{stats}");
    println!("energy breakdown:");
    for (c, pj) in stats.energy.breakdown() {
        println!(
            "  {:12} {:8.1} nJ ({:4.1}%)",
            c.paper_label(),
            pj / 1e3,
            100.0 * stats.energy.fraction(c)
        );
    }
}

fn cmd_sweep(args: &[String]) {
    let (positional, flags) = parse_flags(args, &["store", "threads", "name", "summary-json"]);
    let [spec_path] = positional.as_slice() else {
        usage();
    };
    let json = std::fs::read_to_string(spec_path)
        .unwrap_or_else(|e| fail(format!("read `{spec_path}`: {e}")));
    let spec =
        ExperimentSpec::from_json(&json).unwrap_or_else(|e| fail(format!("`{spec_path}`: {e}")));
    let run_name = flags
        .get("name")
        .cloned()
        .unwrap_or_else(|| spec.name.clone());
    let threads = match flags.get("threads") {
        Some(s) => s
            .parse()
            .ok()
            .filter(|&t| t > 0)
            .unwrap_or_else(|| fail(format!("bad thread count `{s}`"))),
        None => diq::exp::default_threads(),
    };
    let store = open_store(&flags);
    let outcome = sweep_as(&spec, run_name, &store, threads).unwrap_or_else(|e| fail(e));
    for (rec, fresh) in outcome.records.iter().zip(&outcome.fresh) {
        let r = &rec.result;
        println!(
            "  [{}] {} on {} @ {} ({} instrs): IPC {:.3}, energy {:.1} nJ",
            if *fresh { "computed" } else { "cached" },
            r.scheme,
            r.benchmark,
            r.machine,
            r.instructions,
            r.ipc,
            r.energy_pj / 1e3,
        );
    }
    println!(
        "sweep `{}`: {} points, {} computed, {} cached ({:.1}% cache hits), store {}",
        outcome.run,
        outcome.total(),
        outcome.computed,
        outcome.cached,
        outcome.cache_hit_pct(),
        store.root().display(),
    );
    // Machine-readable counters: CI asserts on parsed fields, not on the
    // human lines above (which may change shape as grids grow).
    if let Some(path) = flags.get("summary-json") {
        let json = outcome.summary(&store).to_json();
        match path.as_str() {
            "-" => print!("{json}"),
            path => {
                std::fs::write(path, &json).unwrap_or_else(|e| fail(format!("write `{path}`: {e}")))
            }
        }
    }
}

fn cmd_bench(args: &[String]) {
    let (positional, flags) =
        parse_flags(args, &["name", "out", "e2e-bin", "baseline", "min-ratio"]);
    let [spec_path] = positional.as_slice() else {
        usage();
    };
    let json = std::fs::read_to_string(spec_path)
        .unwrap_or_else(|e| fail(format!("read `{spec_path}`: {e}")));
    let spec =
        ExperimentSpec::from_json(&json).unwrap_or_else(|e| fail(format!("`{spec_path}`: {e}")));
    let run_name = flags
        .get("name")
        .cloned()
        .unwrap_or_else(|| spec.name.clone());
    // End-to-end points run `<bin> run <scheme> <bench> <n>` as a
    // subprocess; default to this very binary. A plain-release binary can
    // be substituted when this one carries profiling instrumentation.
    let e2e_bin = flags.get("e2e-bin").cloned().unwrap_or_else(|| {
        std::env::current_exe()
            .unwrap_or_else(|e| fail(format!("locate own binary: {e}")))
            .display()
            .to_string()
    });
    let min_ratio: f64 = match flags.get("min-ratio") {
        Some(s) => s
            .parse()
            .ok()
            .filter(|r: &f64| r.is_finite() && *r > 0.0)
            .unwrap_or_else(|| fail(format!("bad ratio `{s}`"))),
        None => 1.0,
    };

    let grid = spec.expand().unwrap_or_else(|e| fail(e));
    let mut points = Vec::new();
    for point in &grid {
        // The probe times the generator pipeline; trace-replay points have
        // no generator to time, so they are skipped here.
        let Some(workload) = point.spec() else {
            eprintln!(
                "  skipping {} (trace replay, not a generator)",
                point.source
            );
            continue;
        };
        let mut probe = ThroughputProbe::new(&point.machine, &point.scheme, workload)
            .instructions(point.instructions);
        // `diq run` only drives the stock machine, so end-to-end timing is
        // meaningful (and measured) only on stock grid points.
        if point.machine_label == "table1" {
            probe = probe.e2e_bin(&e2e_bin);
        }
        let p = probe.measure().unwrap_or_else(|e| fail(e));
        print!(
            "  {:10} {:8} @ {:14} {:>9} instrs: {:>9.0} i/s event, {:>9.0} i/s scan",
            p.scheme, p.benchmark, point.machine_label, p.instructions, p.event_ips, p.scan_ips
        );
        if let Some(e2e) = p.self_e2e_ips {
            print!(", {e2e:>9.0} i/s e2e");
        }
        if let Some(shares) = &p.stage_shares {
            let top = shares
                .iter()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("six stages");
            print!(", top stage {} {:.0}%", top.0, top.1 * 100.0);
        }
        println!();
        points.push(p);
    }

    let summary = ThroughputSummary::from_points(
        run_name,
        Some(format!(
            "`diq bench {spec_path}`: simulated instrs/sec, event vs scan wakeup{}",
            if diq::pipeline::StageProfile::ENABLED {
                ", with per-stage wall-clock shares"
            } else {
                ""
            }
        )),
        points,
    );
    let out = flags.get("out").map_or(".", String::as_str);
    let path = summary
        .write_to_store(out)
        .unwrap_or_else(|e| fail(format!("write summary: {e}")));
    println!(
        "bench `{}`: {} points, geomean {:.0} i/s event ({:.2}x vs scan) -> {}",
        summary.run,
        summary.points.len(),
        summary.geomean_event_ips.unwrap_or(0.0),
        summary.geomean_speedup.unwrap_or(0.0),
        path.display(),
    );

    if let Some(baseline_path) = flags.get("baseline") {
        let json = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| fail(format!("read `{baseline_path}`: {e}")));
        let baseline = ThroughputSummary::from_json(&json)
            .unwrap_or_else(|e| fail(format!("`{baseline_path}`: {e}")));
        match bench_gate_ratio(&summary, &baseline) {
            Some((ratio, matched)) => {
                println!(
                    "geomean e2e instrs/sec ratio vs `{}`: {ratio:.3}x over {matched} matched \
                     points (gate: >= {min_ratio:.2}x)",
                    baseline.run
                );
                if ratio < min_ratio {
                    println!("BENCH REGRESSION: ratio {ratio:.3}x below gate {min_ratio:.2}x");
                    std::process::exit(1);
                }
            }
            None => fail(format!(
                "no matched end-to-end points between this run and `{baseline_path}`"
            )),
        }
    }
}

/// Geomean over matched (scheme, benchmark, instructions) points of this
/// run's end-to-end instrs/sec over the baseline's. Returns the ratio and
/// the matched-point count; `None` when nothing matches.
fn bench_gate_ratio(
    current: &ThroughputSummary,
    baseline: &ThroughputSummary,
) -> Option<(f64, usize)> {
    let e2e = |p: &ThroughputPoint| p.self_e2e_ips;
    let ratios: Vec<f64> = current
        .points
        .iter()
        .filter_map(|p| {
            let own = e2e(p)?;
            let base = baseline.points.iter().find_map(|b| {
                (b.scheme == p.scheme
                    && b.benchmark == p.benchmark
                    && b.instructions == p.instructions)
                    .then(|| e2e(b))?
            })?;
            Some(own / base)
        })
        .collect();
    let n = ratios.len();
    diq::stats::geometric_mean(ratios).map(|g| (g, n))
}

/// `diq trace record|info|ingest` — the on-disk `.diqt` trace pipeline.
fn cmd_trace(args: &[String]) {
    match args.first().map(String::as_str) {
        Some("record") => cmd_trace_record(&args[1..]),
        Some("info") => cmd_trace_info(&args[1..]),
        Some("ingest") => cmd_trace_ingest(&args[1..]),
        _ => usage(),
    }
}

/// Parses trace-subcommand args: positionals plus `-n/--instructions` and
/// `-o/--out` style options (short or long, both taking a value).
fn parse_trace_flags(
    args: &[String],
    allowed: &[(&str, &str)],
    switches: &[&str],
) -> (
    Vec<String>,
    std::collections::HashMap<String, String>,
    Vec<String>,
) {
    let mut positional = Vec::new();
    let mut flags = std::collections::HashMap::new();
    let mut on = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if switches.contains(&a.as_str()) {
            on.push(a.trim_start_matches('-').to_string());
            continue;
        }
        if let Some((_, long)) = allowed
            .iter()
            .find(|(short, long)| a == short || a.trim_start_matches("--") == *long)
            .filter(|_| a.starts_with('-'))
        {
            let Some(v) = it.next() else {
                fail(format!("option `{a}` needs a value"));
            };
            flags.insert((*long).to_string(), v.clone());
        } else if a.starts_with('-') && a != "-" {
            fail(format!("unknown option `{a}`"));
        } else {
            positional.push(a.clone());
        }
    }
    (positional, flags, on)
}

fn cmd_trace_record(args: &[String]) {
    let (positional, flags, _) =
        parse_trace_flags(args, &[("-n", "instructions"), ("-o", "out")], &[]);
    let [uri] = positional.as_slice() else {
        usage();
    };
    let source = WorkloadSource::resolve_one(uri).unwrap_or_else(|e| fail(e));
    let Some(spec) = source.spec() else {
        fail(format!(
            "`{uri}` is already a trace; record needs a generated workload"
        ));
    };
    let n: u64 = match flags.get("instructions") {
        Some(s) => parse_count(s).unwrap_or_else(|| fail(format!("bad instruction count `{s}`"))),
        None => diq::exp::DEFAULT_INSTRUCTIONS,
    };
    let out = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| format!("{}.diqt", spec.name.replace(['/', '@'], "-")));
    let meta = trace::record(
        &out,
        &spec.name,
        spec.seed,
        &format!("diq trace record {uri}"),
        TraceGenerator::new(spec),
        n,
    )
    .unwrap_or_else(|e| fail(format!("record `{out}`: {e}")));
    let bytes = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
    println!(
        "recorded {} instrs of `{}` to {out}: {} blocks, {} bytes \
         ({:.2} bytes/instr), content {:016x}",
        meta.instructions,
        meta.name,
        meta.blocks,
        bytes,
        bytes as f64 / meta.instructions.max(1) as f64,
        meta.content,
    );
}

fn cmd_trace_info(args: &[String]) {
    let (positional, _, switches) = parse_trace_flags(args, &[], &["--json"]);
    let [path] = positional.as_slice() else {
        usage();
    };
    let meta = trace::read_meta(path).unwrap_or_else(|e| fail(format!("`{path}`: {e}")));
    let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    if switches.iter().any(|s| s == "json") {
        // Hand-rolled object: `content` renders as a hex string (jq-safe;
        // u64 does not fit in a double).
        println!(
            "{{\"name\":{},\"seed\":{},\"source\":{},\"instructions\":{},\
             \"blocks\":{},\"block_instrs\":{},\"content\":\"{:016x}\",\
             \"file_bytes\":{}}}",
            json_str(&meta.name),
            meta.seed,
            json_str(&meta.source),
            meta.instructions,
            meta.blocks,
            meta.block_instrs,
            meta.content,
            bytes,
        );
    } else {
        println!("name:         {}", meta.name);
        println!("seed:         {}", meta.seed);
        println!("source:       {}", meta.source);
        println!("instructions: {}", meta.instructions);
        println!(
            "blocks:       {} x {} instrs",
            meta.blocks, meta.block_instrs
        );
        println!("content:      {:016x}", meta.content);
        println!(
            "file:         {bytes} bytes ({:.2} bytes/instr)",
            bytes as f64 / meta.instructions.max(1) as f64
        );
    }
}

/// JSON string literal (quotes + escapes) for `diq trace info --json`.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn cmd_trace_ingest(args: &[String]) {
    let (positional, flags, _) = parse_trace_flags(args, &[("-o", "out"), ("-n", "name")], &[]);
    let [input] = positional.as_slice() else {
        usage();
    };
    let Some(out) = flags.get("out") else {
        fail("ingest needs -o/--out <file.diqt>");
    };
    let default_name = || {
        if input == "-" {
            return "stdin".to_string();
        }
        std::path::Path::new(input).file_stem().map_or_else(
            || "ingested".to_string(),
            |s| s.to_string_lossy().into_owned(),
        )
    };
    let name = flags.get("name").cloned().unwrap_or_else(default_name);
    let report = if input == "-" {
        let stdin = std::io::stdin();
        trace::ingest_text(stdin.lock(), out, &name, 0, "diq trace ingest -")
    } else {
        let file =
            std::fs::File::open(input).unwrap_or_else(|e| fail(format!("open `{input}`: {e}")));
        trace::ingest_text(
            std::io::BufReader::new(file),
            out,
            &name,
            0,
            &format!("diq trace ingest {input}"),
        )
    }
    .unwrap_or_else(|e| {
        // A failed ingest must not leave a truncated .diqt behind.
        let _ = std::fs::remove_file(out);
        fail(format!("ingest `{input}`: {e}"))
    });
    println!(
        "ingested {} instrs ({} lines skipped) to {out}: content {:016x}",
        report.instructions, report.skipped, report.meta.content
    );
}

fn cmd_compare(args: &[String]) {
    let (positional, flags) = parse_flags(args, &["store", "threshold"]);
    let [run_a, run_b] = positional.as_slice() else {
        usage();
    };
    let threshold: f64 = match flags.get("threshold") {
        Some(s) => s
            .parse()
            .ok()
            .filter(|t: &f64| t.is_finite() && *t >= 0.0)
            .unwrap_or_else(|| fail(format!("bad threshold `{s}`"))),
        None => 2.0,
    };
    let store = open_store(&flags);
    // A side can be a stored run name or a path to an exported
    // `BENCH_<run>.json` (how CI gates against the artifact of the latest
    // `main` run without sharing a store).
    let load = |name: &str| -> RunSummary {
        if std::path::Path::new(name).is_file() {
            let json = std::fs::read_to_string(name)
                .unwrap_or_else(|e| fail(format!("read `{name}`: {e}")));
            RunSummary::from_json(&json).unwrap_or_else(|e| fail(format!("`{name}`: {e}")))
        } else {
            RunSummary::build(&store, name).unwrap_or_else(|e| fail(e))
        }
    };
    let a = load(run_a);
    let b = load(run_b);
    let cmp = Comparison::between(&a, &b).unwrap_or_else(|e| fail(e));
    println!(
        "{} -> {} ({} matched points)",
        run_a,
        run_b,
        cmp.points.len()
    );
    print!("{}", cmp.render());
    println!(
        "geomean IPC ratio {:.4}, geomean energy ratio {:.4}",
        cmp.geomean_ipc_ratio, cmp.geomean_energy_ratio
    );
    if cmp.is_regression(threshold) {
        println!(
            "REGRESSION: `{}` is {:.2}% slower than `{}` (threshold {:.2}%)",
            run_b,
            cmp.ipc_regression_pct(),
            run_a,
            threshold
        );
        std::process::exit(1);
    }
    println!(
        "ok: IPC regression {:.2}% within threshold {:.2}%",
        cmp.ipc_regression_pct(),
        threshold
    );
}

fn cmd_export(args: &[String]) {
    let (positional, flags) = parse_flags(args, &["store", "out"]);
    let [run] = positional.as_slice() else {
        usage();
    };
    let store = open_store(&flags);
    let summary = RunSummary::build(&store, run).unwrap_or_else(|e| fail(e));
    let json = summary.to_json();
    match flags.get("out").map(String::as_str) {
        Some("-") => print!("{json}"),
        out => {
            let path = out.map_or_else(
                || store.root().join(format!("BENCH_{run}.json")),
                std::path::PathBuf::from,
            );
            std::fs::write(&path, &json)
                .unwrap_or_else(|e| fail(format!("write `{}`: {e}", path.display())));
            println!(
                "exported `{}`: {} points, harmonic-mean IPC {}, geomean IPC {}, {:.1} nJ -> {}",
                run,
                summary.points.len(),
                summary
                    .harmonic_mean_ipc
                    .map_or("n/a".into(), |v| format!("{v:.3}")),
                summary
                    .geometric_mean_ipc
                    .map_or("n/a".into(), |v| format!("{v:.3}")),
                summary.total_energy_pj / 1e3,
                path.display(),
            );
        }
    }
}

/// Strips recognised boolean `--flag`s (flags without a value) out of
/// `args` before [`parse_flags`] sees them.
fn take_bool_flags(
    args: &[String],
    names: &[&str],
) -> (Vec<String>, std::collections::HashSet<String>) {
    let mut rest = Vec::new();
    let mut found = std::collections::HashSet::new();
    for a in args {
        match a.strip_prefix("--") {
            Some(n) if names.contains(&n) => {
                found.insert(n.to_string());
            }
            _ => rest.push(a.clone()),
        }
    }
    (rest, found)
}

fn cmd_serve(args: &[String]) {
    let (positional, flags) = parse_flags(args, &["addr", "store", "lease"]);
    if !positional.is_empty() {
        usage();
    }
    let lease_secs: u64 = match flags.get("lease") {
        Some(s) => s
            .parse()
            .ok()
            .filter(|&l| l > 0)
            .unwrap_or_else(|| fail(format!("bad lease `{s}` (whole seconds)"))),
        None => 30,
    };
    let cfg = ServeConfig {
        addr: flags
            .get("addr")
            .map_or(DEFAULT_SERVE_ADDR, String::as_str)
            .to_string(),
        store_dir: flags.get("store").map_or("results", String::as_str).into(),
        lease: Duration::from_secs(lease_secs),
        ..ServeConfig::default()
    };
    let handle = cfg.spawn().unwrap_or_else(|e| fail(format!("serve: {e}")));
    println!("diq serve listening on {}", handle.addr());
    // Blocks until a client sends Shutdown (`diq submit --shutdown`).
    handle
        .wait()
        .unwrap_or_else(|e| fail(format!("serve shutdown: {e}")));
}

fn cmd_worker(args: &[String]) {
    let (positional, flags) = parse_flags(args, &["connect", "name"]);
    if !positional.is_empty() {
        usage();
    }
    let addr = flags
        .get("connect")
        .map_or(DEFAULT_SERVE_ADDR, String::as_str);
    let mut opts = WorkerOptions::default();
    if let Some(name) = flags.get("name") {
        opts.name.clone_from(name);
    }
    println!("worker `{}` connecting to {addr}", opts.name);
    let report = run_worker(addr, &opts).unwrap_or_else(|e| fail(format!("worker on {addr}: {e}")));
    println!(
        "worker `{}` done: {} points executed",
        opts.name, report.executed
    );
}

fn cmd_submit(args: &[String]) {
    let (args, bools) = take_bool_flags(args, &["watch", "shutdown"]);
    let (positional, flags) = parse_flags(&args, &["connect", "name", "summary-json"]);
    let addr = flags
        .get("connect")
        .map_or(DEFAULT_SERVE_ADDR, String::as_str);
    let mut client = Client::connect(addr).unwrap_or_else(|e| fail(format!("connect {addr}: {e}")));

    if bools.contains("shutdown") {
        if !positional.is_empty() {
            usage();
        }
        client
            .shutdown_server()
            .unwrap_or_else(|e| fail(format!("shutdown {addr}: {e}")));
        println!("server at {addr} shutting down");
        return;
    }

    let [spec_path] = positional.as_slice() else {
        usage();
    };
    let json = std::fs::read_to_string(spec_path)
        .unwrap_or_else(|e| fail(format!("read `{spec_path}`: {e}")));
    let (job, view) = client
        .submit(&json, flags.get("name").map(String::as_str))
        .unwrap_or_else(|e| fail(format!("submit `{spec_path}`: {e}")));
    println!(
        "job {job} `{}` accepted: {} points, {} to compute, {} cached/shared",
        view.run, view.total, view.computed, view.cached
    );
    if !bools.contains("watch") {
        if view.done {
            println!("job {job} `{}` already complete", view.run);
        }
        return;
    }
    let summary = client
        .watch(job, Duration::from_millis(200))
        .unwrap_or_else(|e| fail(format!("watch job {job}: {e}")));
    println!(
        "job {job} `{}` done: {} points, {} computed, {} cached ({:.1}% cache hits), store {}",
        summary.run,
        summary.total,
        summary.computed,
        summary.cached,
        summary.cache_hit_pct,
        summary.store,
    );
    // Same machine-readable counters as `diq sweep --summary-json`, so CI
    // can assert that served sweeps match in-process ones field-for-field.
    if let Some(path) = flags.get("summary-json") {
        let json = summary.to_json();
        match path.as_str() {
            "-" => print!("{json}"),
            path => {
                std::fs::write(path, &json).unwrap_or_else(|e| fail(format!("write `{path}`: {e}")))
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("benchmarks (synthetic SPEC2000 models):");
            for s in suite::all() {
                println!(
                    "  {:10} ({:?}, {} live chains)",
                    s.name, s.class, s.live_chains
                );
            }
            println!("\nschemes:");
            for label in SCHEME_LABELS {
                println!("  {label}");
            }
            println!(
                "\nevery benchmark also takes profile variants \
                 (profile:<name>/expected|stress|adversarial[@seed])\nand \
                 recorded traces replay with trace:<file.diqt> — see `diq trace`"
            );
        }
        Some("run") => cmd_run(&args[1..]),
        Some("figure") => {
            let Some(id) = args.get(1) else { usage() };
            let h = Harness::new();
            match figure_by_id(id, &h) {
                Some(fig) => println!("{fig}"),
                None => {
                    eprintln!(
                        "unknown figure `{id}` (tab1, fig2-fig4, fig6-fig15, sec3, headline)"
                    );
                    std::process::exit(1);
                }
            }
        }
        Some("figures") => {
            let h = Harness::new();
            for fig in figures::all(&h) {
                println!("{fig}");
            }
        }
        Some("trace") => cmd_trace(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("export") => cmd_export(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("worker") => cmd_worker(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        _ => usage(),
    }
}
